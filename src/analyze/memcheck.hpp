#pragma once
// Memory hygiene checks over a recorded trace, independent of banking:
//
//   * out-of-bounds     — an access or fill beyond the trace's declared
//                         logical word count (skipped for v1 traces, which
//                         carry no word count);
//   * uninitialized-read— a load of a word no fill marker or prior store
//                         initialized (initialization persists across
//                         barriers: it is data state, not ordering state);
//   * duplicate-lane    — one lane issuing two requests in one step
//                         (read_trace rejects these in files; hand-built
//                         traces are validated here);
//   * lane-out-of-range — a lane id >= the trace's warp size.

#include <vector>

#include "analyze/diagnostics.hpp"
#include "gpusim/trace.hpp"

namespace wcm::analyze {

/// Run the memcheck pass; diagnostics are ordered by step index.
[[nodiscard]] std::vector<Diagnostic> check_memory(const gpusim::Trace& trace);

}  // namespace wcm::analyze
