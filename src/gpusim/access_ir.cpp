#include "gpusim/access_ir.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace wcm::gpusim::ir {

LinForm LinForm::constant(i64 v) {
  LinForm lf;
  lf.c = v;
  return lf;
}

LinForm LinForm::sym(int index, i64 coeff) {
  LinForm lf;
  if (coeff != 0) {
    lf.terms.emplace_back(index, coeff);
  }
  return lf;
}

LinForm& LinForm::add(const LinForm& o, i64 scale) {
  c += o.c * scale;
  std::map<int, i64> merged;
  for (const auto& [idx, coeff] : terms) {
    merged[idx] += coeff;
  }
  for (const auto& [idx, coeff] : o.terms) {
    merged[idx] += coeff * scale;
  }
  terms.clear();
  for (const auto& [idx, coeff] : merged) {
    if (coeff != 0) {
      terms.emplace_back(idx, coeff);
    }
  }
  return *this;
}

LinForm operator+(LinForm a, const LinForm& b) {
  a.add(b);
  return a;
}

LinForm operator-(LinForm a, const LinForm& b) {
  a.add(b, -1);
  return a;
}

LinForm scaled(LinForm a, i64 k) {
  if (k == 0) {
    return LinForm::constant(0);
  }
  a.c *= k;
  for (auto& [idx, coeff] : a.terms) {
    coeff *= k;
  }
  return a;
}

bool operator==(const LinForm& a, const LinForm& b) noexcept {
  return a.c == b.c && a.terms == b.terms;
}

int KernelDesc::add_symbol(std::string name, SymRole role, i64 lo, i64 hi,
                           u64 mod, i64 rem, int upper_sym) {
  WCM_EXPECTS(find_symbol(name) < 0, "duplicate symbol: " + name);
  WCM_EXPECTS(upper_sym < static_cast<int>(symbols.size()),
              "upper_sym must reference an earlier symbol");
  Symbol s;
  s.name = std::move(name);
  s.role = role;
  s.lo = lo;
  s.hi = hi;
  s.mod = mod;
  s.rem = rem;
  s.upper_sym = upper_sym;
  symbols.push_back(std::move(s));
  return static_cast<int>(symbols.size()) - 1;
}

int KernelDesc::find_symbol(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

void remap_linform(LinForm& lf, const std::vector<int>& map) {
  for (auto& [idx, coeff] : lf.terms) {
    idx = map[static_cast<std::size_t>(idx)];
  }
  std::sort(lf.terms.begin(), lf.terms.end());
}

}  // namespace

void KernelDesc::append(const KernelDesc& other) {
  WCM_EXPECTS(w == other.w && b == other.b && pad == other.pad &&
                  layout == other.layout,
              "appending a kernel description with different machine shape");
  std::vector<int> map(other.symbols.size(), -1);
  for (std::size_t i = 0; i < other.symbols.size(); ++i) {
    const Symbol& s = other.symbols[i];
    const int existing = find_symbol(s.name);
    // Extent forms reference earlier symbols only, so `map` is complete
    // for every index they mention by the time we remap them.
    LinForm max_form = s.max_form;
    LinForm step_form = s.step_form;
    remap_linform(max_form, map);
    remap_linform(step_form, map);
    if (existing >= 0) {
      const Symbol& mine = symbols[static_cast<std::size_t>(existing)];
      WCM_EXPECTS(mine.role == s.role && mine.lo == s.lo && mine.hi == s.hi &&
                      mine.mod == s.mod && mine.rem == s.rem &&
                      mine.max_form == max_form &&
                      mine.step_form == step_form,
                  "symbol '" + s.name + "' declared differently");
      map[i] = existing;
    } else {
      Symbol copy = s;
      copy.max_form = std::move(max_form);
      copy.step_form = std::move(step_form);
      if (copy.upper_sym >= 0) {
        copy.upper_sym = map[static_cast<std::size_t>(copy.upper_sym)];
        WCM_EXPECTS(copy.upper_sym >= 0, "upper_sym remap failed");
      }
      symbols.push_back(std::move(copy));
      map[i] = static_cast<int>(symbols.size()) - 1;
    }
  }
  if (!other.words.is_zero()) {
    LinForm other_words = other.words;
    remap_linform(other_words, map);
    if (words.is_zero()) {
      words = std::move(other_words);
    } else {
      WCM_EXPECTS(words == other_words,
                  "appending a kernel with a different shared-word count");
    }
  }
  for (StepGroup g : other.groups) {
    for (LanePiece& p : g.pattern.pieces) {
      remap_linform(p.base, map);
      remap_linform(p.stride, map);
    }
    remap_linform(g.pattern.span, map);
    remap_linform(g.pattern.nranges, map);
    remap_linform(g.region_lo, map);
    remap_linform(g.region_hi, map);
    groups.push_back(std::move(g));
  }
}

StepGroup barrier_group(std::string name) {
  StepGroup g;
  g.name = std::move(name);
  g.kind = GroupKind::barrier;
  return g;
}

StepGroup fill_group(std::string name, std::string repeat) {
  StepGroup g;
  g.name = std::move(name);
  g.kind = GroupKind::fill;
  g.repeat = std::move(repeat);
  return g;
}

StepGroup affine_group(std::string name, GroupKind kind, u32 lanes,
                       LinForm base, LinForm stride, std::string repeat) {
  WCM_EXPECTS(lanes > 0, "affine group needs at least one lane");
  StepGroup g;
  g.name = std::move(name);
  g.kind = kind;
  g.repeat = std::move(repeat);
  LanePiece piece;
  piece.lane_lo = 0;
  piece.lane_hi = lanes - 1;
  piece.base = std::move(base);
  piece.stride = std::move(stride);
  g.pattern.kind = PatternKind::pieces;
  g.pattern.pieces.push_back(std::move(piece));
  return g;
}

StepGroup window_group(std::string name, GroupKind kind, u32 active,
                       LinForm span, LinForm nranges, std::string repeat,
                       bool atomic, bool theorem_site) {
  StepGroup g;
  g.name = std::move(name);
  g.kind = kind;
  g.atomic = atomic;
  g.theorem_site = theorem_site;
  g.repeat = std::move(repeat);
  g.pattern.kind = PatternKind::window;
  g.pattern.active = active;
  g.pattern.span = std::move(span);
  g.pattern.nranges = std::move(nranges);
  return g;
}

StepGroup with_region(StepGroup g, LinForm lo, LinForm hi) {
  g.has_region = true;
  g.region_lo = std::move(lo);
  g.region_hi = std::move(hi);
  return g;
}

std::string to_string(const LinForm& lf, const KernelDesc& desc) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [idx, coeff] : lf.terms) {
    const std::string& name = desc.symbols[static_cast<std::size_t>(idx)].name;
    if (first) {
      if (coeff == 1) {
        os << name;
      } else if (coeff == -1) {
        os << "-" << name;
      } else {
        os << coeff << "*" << name;
      }
      first = false;
      continue;
    }
    const i64 mag = coeff < 0 ? -coeff : coeff;
    os << (coeff < 0 ? " - " : " + ");
    if (mag != 1) {
      os << mag << "*";
    }
    os << name;
  }
  if (lf.c != 0 || first) {
    if (first) {
      os << lf.c;
    } else {
      os << (lf.c < 0 ? " - " : " + ") << (lf.c < 0 ? -lf.c : lf.c);
    }
  }
  return os.str();
}

std::string to_string(const AccessPattern& p, const KernelDesc& desc) {
  std::ostringstream os;
  if (p.kind == PatternKind::window) {
    os << "window(span=" << to_string(p.span, desc)
       << ", ranges=" << to_string(p.nranges, desc) << ", active=" << p.active
       << ")";
    return os.str();
  }
  for (std::size_t i = 0; i < p.pieces.size(); ++i) {
    const LanePiece& piece = p.pieces[i];
    if (i > 0) {
      os << "; ";
    }
    os << "lanes " << piece.lane_lo << ".." << piece.lane_hi << ": "
       << to_string(piece.base, desc);
    const std::string stride = to_string(piece.stride, desc);
    if (piece.lane_hi > piece.lane_lo && stride != "0") {
      os << " + (" << stride << ")*dlane";
    }
  }
  return os.str();
}

const char* to_string(GroupKind k) noexcept {
  switch (k) {
    case GroupKind::read:
      return "read";
    case GroupKind::write:
      return "write";
    case GroupKind::barrier:
      return "barrier";
    case GroupKind::fill:
      return "fill";
  }
  return "?";
}

}  // namespace wcm::gpusim::ir
