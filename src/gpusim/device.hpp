#pragma once
// Device descriptors for the two GPUs the paper evaluates on.  All
// quantities are the published specifications of the physical cards; the
// cost-model calibration constants are separate (see cost_model.hpp) and
// documented as calibration, not measurement.  The Sec. IV-A occupancy
// rules the paper reasons with live in occupancy.hpp.

#include <cstddef>
#include <string>

#include "util/math.hpp"

namespace wcm::gpusim {

struct Device {
  std::string name;
  u32 cc_major = 0;  ///< compute capability
  u32 cc_minor = 0;
  u32 sm_count = 0;
  u32 cores_per_sm = 0;
  u32 warp_size = 32;
  u32 max_threads_per_sm = 0;
  u32 max_blocks_per_sm = 0;
  std::size_t shared_mem_per_sm = 0;     ///< bytes usable by resident blocks
  std::size_t shared_mem_per_block = 0;  ///< bytes one block may allocate
  double clock_ghz = 0.0;                ///< SM clock
  double mem_bandwidth_gbs = 0.0;        ///< global memory, GB/s (GB = 1e9 B)
  double global_latency_cycles = 0.0;    ///< average global load latency
  /// Shared-memory wavefront throughput per SM, wavefronts/cycle.
  double shared_wavefronts_per_cycle = 1.0;
  /// Resident warps per SM needed to reach peak issue throughput; below
  /// this, throughput degrades proportionally (latency no longer hidden).
  double warps_for_peak = 16.0;

  [[nodiscard]] u32 total_cores() const noexcept {
    return sm_count * cores_per_sm;
  }
};

/// Quadro M4000 (Maxwell, compute capability 5.2): 13 SMs x 128 cores,
/// 96 KiB shared memory per SM, 2048 resident threads per SM, ~192 GB/s.
[[nodiscard]] Device quadro_m4000();

/// GeForce RTX 2080 Ti (Turing, compute capability 7.5): 68 SMs x 64 cores,
/// 64 KiB shared memory usable per SM (the 96 KiB unified L1/shared is
/// configured 32 L1 / 64 shared as in the paper), 1024 resident threads per
/// SM, ~616 GB/s.
[[nodiscard]] Device rtx_2080ti();

/// GeForce GTX 770 (Kepler, compute capability 3.0): the card on which
/// Karsin et al. demonstrated the original hand-built conflict-heavy
/// inputs (paper Sec. II-C).  8 SMX x 192 cores, 48 KiB shared per SM,
/// ~224 GB/s.
[[nodiscard]] Device gtx_770();

/// What-if device with an arbitrary warp/bank width (the paper's analysis
/// is parameterized by w; this lets the benches explore the asymptotics
/// beyond the 32 banks of real NVIDIA hardware).  Other parameters follow
/// the M4000, scaled so aggregate width stays constant.
[[nodiscard]] Device synthetic_device(u32 warp_size);

}  // namespace wcm::gpusim
