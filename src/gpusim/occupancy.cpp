#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/math.hpp"

namespace wcm::gpusim {

Occupancy occupancy(const Device& dev, u32 threads_per_block,
                    std::size_t shared_bytes_per_block) {
  WCM_EXPECTS(threads_per_block > 0, "empty thread block");

  Occupancy occ;
  if (shared_bytes_per_block > dev.shared_mem_per_block ||
      threads_per_block > dev.max_threads_per_sm) {
    occ.limiter = Occupancy::Limiter::block_too_large;
    return occ;
  }

  const u32 by_threads = dev.max_threads_per_sm / threads_per_block;
  const u32 by_shared =
      shared_bytes_per_block == 0
          ? dev.max_blocks_per_sm
          : static_cast<u32>(dev.shared_mem_per_sm / shared_bytes_per_block);
  const u32 by_blocks = dev.max_blocks_per_sm;

  occ.resident_blocks = std::min({by_threads, by_shared, by_blocks});
  occ.limiter = Occupancy::Limiter::threads;
  if (by_blocks < by_threads && by_blocks <= by_shared) {
    occ.limiter = Occupancy::Limiter::blocks;
  }
  if (shared_bytes_per_block > 0 && by_shared < by_threads &&
      by_shared < by_blocks) {
    occ.limiter = Occupancy::Limiter::shared_memory;
  }

  occ.resident_threads = occ.resident_blocks * threads_per_block;
  // A block need not be a whole number of warps: the hardware pads the
  // last warp with inactive lanes, so warp accounting rounds up.
  occ.resident_warps =
      occ.resident_blocks *
      static_cast<u32>(ceil_div(threads_per_block, dev.warp_size));
  occ.fraction = static_cast<double>(occ.resident_threads) /
                 static_cast<double>(dev.max_threads_per_sm);
  return occ;
}

}  // namespace wcm::gpusim
