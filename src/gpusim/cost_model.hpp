#pragma once
// Analytical cost model: converts the event counters of one simulated kernel
// into modeled wall time on a Device.  This is the *only* place simulated
// events become seconds, and the formula is deliberately simple and fully
// documented:
//
//   occ      = occupancy(device, launch)
//   waves    = ceil(blocks / (occ.resident_blocks * sm_count))
//   hiding   = min(1, occ.resident_warps / warps_for_peak)
//                — issue efficiency: with few resident warps the SM cannot
//                  hide pipeline/memory latency and throughput degrades
//                  proportionally (this is what makes the paper's
//                  E=17,b=256 75%-occupancy configuration slower than
//                  E=15,b=512 on random inputs).
//   t_bw     = global_transactions * 128 B / bandwidth
//   t_lat    = waves * (binary_search_steps / blocks) * latency / clock
//                — dependent global round trips (partition binary search);
//                  chains of concurrently-resident blocks overlap, so each
//                  wave pays one chain.
//   t_shared = (base wavefronts / hiding + replay wavefronts)
//              / (sm_count * shared_wavefronts_per_cycle * clock)
//                — THIS is where bank conflicts become time: a conflicted
//                  warp access is replayed once per extra distinct address
//                  in its worst bank.  Base accesses are latency-bound and
//                  benefit from occupancy (hiding); replays occupy the
//                  shared-memory pipe regardless of occupancy, which is why
//                  the paper's low-occupancy E=17,b=256 configuration has a
//                  slower baseline but a *smaller relative* slowdown under
//                  attack (Sec. IV-B).
//   t_comp   = warp_merge_steps * compute_cycles_per_merge_step
//              / (sm_count * (cores_per_sm / warp_size) * clock * hiding)
//   seconds  = max(t_bw, t_shared + t_comp) + t_lat + launch_overhead
//
// Absolute numbers are calibrated, not measured (we have no GPU); the
// reproduction target is the *shape* of the paper's figures.  Calibration
// constants live in Calibration and are documented in EXPERIMENTS.md.

#include "gpusim/device.hpp"
#include "gpusim/stats.hpp"

namespace wcm::gpusim {

struct LaunchConfig {
  std::size_t blocks = 0;
  u32 threads_per_block = 0;
  std::size_t shared_bytes_per_block = 0;
};

/// Per-library calibration knobs (Thrust vs Modern GPU differ in constant
/// factors, not algorithm).
struct Calibration {
  /// SM cycles of instruction work per lock-step merge iteration per warp
  /// (comparison, index bookkeeping, predication).
  double compute_cycles_per_merge_step = 28.0;
  /// Fixed cost per kernel launch.
  double launch_overhead_s = 3.0e-6;
};

struct KernelTime {
  double seconds = 0.0;
  double t_bandwidth = 0.0;
  double t_latency = 0.0;
  double t_shared = 0.0;
  double t_compute = 0.0;
  double t_overhead = 0.0;

  KernelTime& operator+=(const KernelTime& o) noexcept;
};

/// Modeled execution time of one kernel.  Requires the launch to fit on the
/// device (occupancy > 0).
[[nodiscard]] KernelTime estimate_kernel_time(const Device& dev,
                                              const LaunchConfig& launch,
                                              const KernelStats& stats,
                                              const Calibration& cal = {});

}  // namespace wcm::gpusim
