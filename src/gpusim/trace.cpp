#include "gpusim/trace.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace wcm::gpusim {

u64 TraceStep::active_mask() const noexcept {
  u64 mask = 0;
  for (const auto& [lane, addr] : accesses) {
    (void)addr;
    if (lane < 64) {
      mask |= u64{1} << lane;
    }
  }
  return mask;
}

std::size_t Trace::total_accesses() const noexcept {
  std::size_t n = 0;
  for (const auto& s : steps) {
    n += s.accesses.size();
  }
  return n;
}

std::size_t Trace::access_steps() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(steps.begin(), steps.end(),
                    [](const TraceStep& s) { return s.is_access(); }));
}

std::size_t Trace::barrier_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(steps.begin(), steps.end(), [](const TraceStep& s) {
        return s.kind == StepKind::barrier;
      }));
}

void TraceRecorder::on_attach(u32 warp_size, std::size_t logical_words) {
  if (trace_.steps.empty()) {
    trace_.warp_size = warp_size;
    trace_.logical_words = logical_words;
    return;
  }
  WCM_CHECK_SIM(trace_.warp_size == warp_size,
                "trace recorder re-attached across warp sizes");
  trace_.logical_words = std::max(trace_.logical_words, logical_words);
}

void TraceRecorder::on_read(std::span<const LaneRead> reads, bool atomic) {
  TraceStep step;
  step.kind = StepKind::read;
  step.atomic = atomic;
  step.accesses.reserve(reads.size());
  for (const auto& r : reads) {
    step.accesses.emplace_back(r.lane, r.addr);
  }
  trace_.steps.push_back(std::move(step));
}

void TraceRecorder::on_write(std::span<const LaneWrite> writes, bool atomic) {
  TraceStep step;
  step.kind = StepKind::write;
  step.atomic = atomic;
  step.accesses.reserve(writes.size());
  for (const auto& w : writes) {
    step.accesses.emplace_back(w.lane, w.addr);
  }
  trace_.steps.push_back(std::move(step));
}

void TraceRecorder::on_barrier() {
  TraceStep step;
  step.kind = StepKind::barrier;
  trace_.steps.push_back(std::move(step));
}

void TraceRecorder::on_fill(std::size_t base, std::size_t count) {
  TraceStep step;
  step.kind = StepKind::fill;
  step.fill_base = base;
  step.fill_count = count;
  trace_.steps.push_back(std::move(step));
}

dmm::MachineStats replay_stats(const Trace& trace,
                               const SharedLayout& layout) {
  WCM_EXPECTS(layout.w == trace.warp_size,
              "layout bank count must match the trace's warp size");
  dmm::MachineStats stats;
  std::vector<dmm::Request> step;
  for (const auto& s : trace.steps) {
    if (!s.is_access()) {
      continue;
    }
    step.clear();
    for (const auto& [lane, addr] : s.accesses) {
      step.push_back({lane, layout.physical(addr),
                      s.is_write() ? dmm::Op::write : dmm::Op::read, 0});
    }
    stats += dmm::analyze_step(step, trace.warp_size);
  }
  return stats;
}

std::vector<dmm::StepCost> replay_step_costs(const Trace& trace,
                                             const SharedLayout& layout) {
  WCM_EXPECTS(layout.w == trace.warp_size,
              "layout bank count must match the trace's warp size");
  std::vector<dmm::StepCost> costs;
  costs.reserve(trace.steps.size());
  std::vector<dmm::Request> step;
  for (const auto& s : trace.steps) {
    if (!s.is_access()) {
      costs.emplace_back();  // barriers and fills are free
      continue;
    }
    step.clear();
    for (const auto& [lane, addr] : s.accesses) {
      step.push_back({lane, layout.physical(addr),
                      s.is_write() ? dmm::Op::write : dmm::Op::read, 0});
    }
    costs.push_back(dmm::analyze_step(step, trace.warp_size));
  }
  return costs;
}

void write_trace(std::ostream& os, const Trace& trace) {
  os << "WCMT2 " << trace.warp_size << ' ' << trace.logical_words << ' '
     << trace.steps.size() << '\n';
  for (const auto& s : trace.steps) {
    switch (s.kind) {
      case StepKind::barrier:
        os << "B\n";
        continue;
      case StepKind::fill:
        os << "F " << s.fill_base << ' ' << s.fill_count << '\n';
        continue;
      case StepKind::read:
      case StepKind::write:
        break;
    }
    if (s.atomic) {
      os << 'A';
    }
    os << (s.is_write() ? 'W' : 'R');
    for (const auto& [lane, addr] : s.accesses) {
      os << ' ' << lane << ':' << addr;
    }
    os << '\n';
  }
  WCM_CHECK_IO(static_cast<bool>(os), "trace write failed");
}

namespace {

/// Strict full-token unsigned parse; throws wcm::parse_error on anything
/// other than a plain decimal number (so garbage tokens never escape as a
/// raw std::invalid_argument from std::stoul).
std::uint64_t parse_trace_number(const std::string& tok) {
  std::uint64_t value = 0;
  const auto [ptr, err] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  WCM_CHECK_PARSE(err == std::errc() && ptr == tok.data() + tok.size() &&
                      !tok.empty(),
                  "malformed trace number '" + tok + "'");
  return value;
}

/// Parse the `lane:addr ...` tail of an access line into `step`, rejecting
/// duplicate lanes and lanes outside the warp.
void parse_accesses(std::istringstream& ls, const std::string& line,
                    u32 warp_size, TraceStep& step) {
  u64 seen_lanes = 0;
  std::string tok;
  while (ls >> tok) {
    const auto colon = tok.find(':');
    WCM_CHECK_PARSE(colon != std::string::npos,
                    "malformed trace access '" + tok + "'");
    const auto lane =
        static_cast<u32>(parse_trace_number(tok.substr(0, colon)));
    WCM_CHECK_PARSE(lane < warp_size,
                    "lane " + std::to_string(lane) +
                        " outside warp in trace line '" + line + "'");
    WCM_CHECK_PARSE((seen_lanes & (u64{1} << lane)) == 0,
                    "duplicate lane " + std::to_string(lane) +
                        " in trace line '" + line + "'");
    seen_lanes |= u64{1} << lane;
    step.accesses.emplace_back(
        lane,
        static_cast<std::size_t>(parse_trace_number(tok.substr(colon + 1))));
  }
}

}  // namespace

Trace read_trace(std::istream& is) {
  std::string magic;
  Trace trace;
  std::size_t count = 0;
  is >> magic >> trace.warp_size;
  WCM_CHECK_PARSE(static_cast<bool>(is) &&
                      (magic == "WCMT" || magic == "WCMT2"),
                  "not a WCMT trace stream");
  const bool v2 = magic == "WCMT2";
  if (v2) {
    is >> trace.logical_words;
  }
  is >> count;
  WCM_CHECK_PARSE(static_cast<bool>(is), "truncated trace header");
  WCM_CHECK_PARSE(trace.warp_size >= 1 && trace.warp_size <= 64,
                  "trace warp size must be in 1..64");
  WCM_FAILPOINT("trace.read.malformed", parse_error,
                "injected malformed trace stream");
  is.ignore();  // trailing newline
  // Cap the pre-allocation so a corrupt header cannot drive a pathological
  // reserve; the step count is still enforced exactly below.
  trace.steps.reserve(std::min<std::size_t>(count, std::size_t{1} << 20));
  std::string line;
  while (trace.steps.size() < count && std::getline(is, line)) {
    WCM_CHECK_PARSE(!line.empty(), "empty trace line");
    TraceStep step;
    std::istringstream ls(line);
    std::string op;
    ls >> op;
    if (op == "R" || op == "W" || op == "AR" || op == "AW") {
      step.kind = op.back() == 'W' ? StepKind::write : StepKind::read;
      step.atomic = op.size() == 2;
      WCM_CHECK_PARSE(v2 || !step.atomic,
                      "atomic step in a v1 trace line '" + line + "'");
      parse_accesses(ls, line, trace.warp_size, step);
    } else if (op == "B" && v2) {
      step.kind = StepKind::barrier;
      std::string extra;
      WCM_CHECK_PARSE(!(ls >> extra),
                      "trailing tokens on barrier line '" + line + "'");
    } else if (op == "F" && v2) {
      step.kind = StepKind::fill;
      std::string base_tok;
      std::string count_tok;
      std::string extra;
      WCM_CHECK_PARSE(static_cast<bool>(ls >> base_tok >> count_tok) &&
                          !(ls >> extra),
                      "malformed fill line '" + line + "'");
      step.fill_base =
          static_cast<std::size_t>(parse_trace_number(base_tok));
      step.fill_count =
          static_cast<std::size_t>(parse_trace_number(count_tok));
    } else {
      WCM_CHECK_PARSE(false, "malformed trace line '" + line + "'");
    }
    trace.steps.push_back(std::move(step));
  }
  WCM_CHECK_PARSE(trace.steps.size() == count, "truncated trace stream");
  // Anything after the declared steps is corruption, not padding.
  std::string trailing;
  while (std::getline(is, trailing)) {
    WCM_CHECK_PARSE(
        trailing.find_first_not_of(" \t\r") == std::string::npos,
        "trailing garbage after trace steps: '" + trailing + "'");
  }
  return trace;
}

}  // namespace wcm::gpusim
