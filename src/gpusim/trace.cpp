#include "gpusim/trace.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace wcm::gpusim {

std::size_t Trace::total_accesses() const noexcept {
  std::size_t n = 0;
  for (const auto& s : steps) {
    n += s.accesses.size();
  }
  return n;
}

void TraceRecorder::on_read(std::span<const LaneRead> reads) {
  TraceStep step;
  step.is_write = false;
  step.accesses.reserve(reads.size());
  for (const auto& r : reads) {
    step.accesses.emplace_back(r.lane, r.addr);
  }
  trace_.steps.push_back(std::move(step));
}

void TraceRecorder::on_write(std::span<const LaneWrite> writes) {
  TraceStep step;
  step.is_write = true;
  step.accesses.reserve(writes.size());
  for (const auto& w : writes) {
    step.accesses.emplace_back(w.lane, w.addr);
  }
  trace_.steps.push_back(std::move(step));
}

dmm::MachineStats replay_stats(const Trace& trace,
                               const SharedLayout& layout) {
  WCM_EXPECTS(layout.w == trace.warp_size,
              "layout bank count must match the trace's warp size");
  dmm::MachineStats stats;
  std::vector<dmm::Request> step;
  for (const auto& s : trace.steps) {
    step.clear();
    for (const auto& [lane, addr] : s.accesses) {
      step.push_back({lane, layout.physical(addr),
                      s.is_write ? dmm::Op::write : dmm::Op::read, 0});
    }
    stats += dmm::analyze_step(step, trace.warp_size);
  }
  return stats;
}

void write_trace(std::ostream& os, const Trace& trace) {
  os << "WCMT " << trace.warp_size << ' ' << trace.steps.size() << '\n';
  for (const auto& s : trace.steps) {
    os << (s.is_write ? 'W' : 'R');
    for (const auto& [lane, addr] : s.accesses) {
      os << ' ' << lane << ':' << addr;
    }
    os << '\n';
  }
  WCM_CHECK_IO(static_cast<bool>(os), "trace write failed");
}

namespace {

/// Strict full-token unsigned parse; throws wcm::parse_error on anything
/// other than a plain decimal number (so garbage tokens never escape as a
/// raw std::invalid_argument from std::stoul).
std::uint64_t parse_trace_number(const std::string& tok) {
  std::uint64_t value = 0;
  const auto [ptr, err] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  WCM_CHECK_PARSE(err == std::errc() && ptr == tok.data() + tok.size() &&
                      !tok.empty(),
                  "malformed trace number '" + tok + "'");
  return value;
}

}  // namespace

Trace read_trace(std::istream& is) {
  std::string magic;
  Trace trace;
  std::size_t count = 0;
  is >> magic >> trace.warp_size >> count;
  WCM_CHECK_PARSE(static_cast<bool>(is) && magic == "WCMT",
                  "not a WCMT trace stream");
  WCM_FAILPOINT("trace.read.malformed", parse_error,
                "injected malformed trace stream");
  is.ignore();  // trailing newline
  trace.steps.reserve(count);
  std::string line;
  while (trace.steps.size() < count && std::getline(is, line)) {
    WCM_CHECK_PARSE(!line.empty() && (line[0] == 'R' || line[0] == 'W'),
                    "malformed trace line '" + line + "'");
    TraceStep step;
    step.is_write = line[0] == 'W';
    std::istringstream ls(line.substr(1));
    std::string tok;
    while (ls >> tok) {
      const auto colon = tok.find(':');
      WCM_CHECK_PARSE(colon != std::string::npos,
                      "malformed trace access '" + tok + "'");
      step.accesses.emplace_back(
          static_cast<u32>(parse_trace_number(tok.substr(0, colon))),
          static_cast<std::size_t>(parse_trace_number(tok.substr(colon + 1))));
    }
    trace.steps.push_back(std::move(step));
  }
  WCM_CHECK_PARSE(trace.steps.size() == count, "truncated trace stream");
  return trace;
}

}  // namespace wcm::gpusim
