#include "gpusim/device.hpp"

namespace wcm::gpusim {

Device quadro_m4000() {
  Device d;
  d.name = "Quadro M4000";
  d.cc_major = 5;
  d.cc_minor = 2;
  d.sm_count = 13;
  d.cores_per_sm = 128;
  d.warp_size = 32;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 96 * 1024;
  d.shared_mem_per_block = 48 * 1024;
  d.clock_ghz = 0.773;
  d.mem_bandwidth_gbs = 192.3;
  d.global_latency_cycles = 368.0;
  d.shared_wavefronts_per_cycle = 1.0;
  d.warps_for_peak = 32.0;
  return d;
}

Device rtx_2080ti() {
  Device d;
  d.name = "RTX 2080 Ti";
  d.cc_major = 7;
  d.cc_minor = 5;
  d.sm_count = 68;
  d.cores_per_sm = 64;
  d.warp_size = 32;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 16;
  // 96 KiB unified L1/shared configured as 32 KiB L1 + 64 KiB shared, the
  // configuration the paper's parameter discussion assumes.
  d.shared_mem_per_sm = 64 * 1024;
  d.shared_mem_per_block = 64 * 1024;
  d.clock_ghz = 1.545;
  d.mem_bandwidth_gbs = 616.0;
  d.global_latency_cycles = 434.0;
  // Effective shared-pipe throughput, calibrated: Turing's unified L1/shared
  // services fewer shared wavefronts per cycle than Maxwell relative to its
  // clock; 0.5 reproduces the measured Thrust throughput ratio between the
  // two cards (see EXPERIMENTS.md, calibration).
  d.shared_wavefronts_per_cycle = 0.5;
  d.warps_for_peak = 32.0;
  return d;
}

Device gtx_770() {
  Device d;
  d.name = "GTX 770";
  d.cc_major = 3;
  d.cc_minor = 0;
  d.sm_count = 8;
  d.cores_per_sm = 192;
  d.warp_size = 32;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm = 48 * 1024;
  d.shared_mem_per_block = 48 * 1024;
  d.clock_ghz = 1.046;
  d.mem_bandwidth_gbs = 224.3;
  d.global_latency_cycles = 340.0;
  d.shared_wavefronts_per_cycle = 1.0;
  d.warps_for_peak = 32.0;
  return d;
}

Device synthetic_device(u32 warp_size) {
  Device d = quadro_m4000();
  d.name = "Synthetic-" + std::to_string(warp_size) + "bank";
  d.warp_size = warp_size;
  // Keep the aggregate lane count: cores per SM fixed, so issue width in
  // warps scales inversely with the warp size.
  d.max_threads_per_sm = 64 * warp_size;
  d.warps_for_peak = 32.0 * 32.0 / warp_size;
  // Wider warps mean wider tiles; allow one block to claim the whole SM's
  // shared memory so every (E, b = 4w) configuration fits.
  d.shared_mem_per_block = d.shared_mem_per_sm;
  return d;
}

}  // namespace wcm::gpusim
