#pragma once
// Occupancy calculator: how many blocks/threads/warps of a kernel launch
// are simultaneously resident on one SM, and which resource limits the
// count.  Reproduces the paper's Sec. IV-A arithmetic (e.g. E=15,b=512 on
// the 2080 Ti -> 2 blocks, 1024 threads, 100%; E=17,b=256 -> 3 blocks,
// 768 threads, 75%).
//
// Beyond the cost model, this is also the host runtime's notion of how
// much useful parallelism one simulated launch exposes: the campaign
// scheduler sizes its worker pool from `occupancy()` (see
// runtime/thread_pool.hpp).

#include <cstddef>

#include "gpusim/device.hpp"
#include "util/math.hpp"

namespace wcm::gpusim {

/// Occupancy of a kernel launch on one SM.
struct Occupancy {
  u32 resident_blocks = 0;
  u32 resident_threads = 0;
  u32 resident_warps = 0;
  double fraction = 0.0;  ///< resident_threads / max_threads_per_sm
  enum class Limiter { threads, shared_memory, blocks, block_too_large };
  Limiter limiter = Limiter::threads;
};

/// Compute resident blocks/threads per SM for a launch of
/// `threads_per_block` threads using `shared_bytes_per_block` shared memory.
[[nodiscard]] Occupancy occupancy(const Device& dev, u32 threads_per_block,
                                  std::size_t shared_bytes_per_block);

}  // namespace wcm::gpusim
