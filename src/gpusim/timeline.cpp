#include "gpusim/timeline.hpp"

#include <algorithm>
#include <queue>

#include "gpusim/occupancy.hpp"
#include "util/check.hpp"

namespace wcm::gpusim {

TimelineResult schedule_blocks(std::span<const double> block_cycles,
                               std::size_t slots) {
  WCM_EXPECTS(slots > 0, "need at least one residency slot");
  TimelineResult r;
  r.slots = slots;
  if (block_cycles.empty()) {
    r.utilization = 1.0;
    return r;
  }

  // Min-heap of slot free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::size_t s = 0; s < slots; ++s) {
    free_at.push(0.0);
  }
  for (const double cost : block_cycles) {
    WCM_EXPECTS(cost >= 0.0, "negative block cost");
    const double start = free_at.top();
    free_at.pop();
    free_at.push(start + cost);
    r.makespan_cycles = std::max(r.makespan_cycles, start + cost);
    r.busy_cycles += cost;
  }
  r.utilization =
      r.makespan_cycles > 0.0
          ? r.busy_cycles / (static_cast<double>(slots) * r.makespan_cycles)
          : 1.0;
  return r;
}

TimelineResult schedule_on_device(std::span<const double> block_cycles,
                                  const Device& dev, u32 threads_per_block,
                                  std::size_t shared_bytes_per_block) {
  const Occupancy occ =
      occupancy(dev, threads_per_block, shared_bytes_per_block);
  WCM_EXPECTS(occ.resident_blocks > 0, "launch does not fit on the device");
  return schedule_blocks(
      block_cycles,
      static_cast<std::size_t>(occ.resident_blocks) * dev.sm_count);
}

}  // namespace wcm::gpusim
