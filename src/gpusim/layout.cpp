#include "gpusim/layout.hpp"

#include "util/error.hpp"

namespace wcm::gpusim {

const char* to_string(LayoutKind kind) noexcept {
  switch (kind) {
    case LayoutKind::xor_swizzle:
      return "xor";
    case LayoutKind::rotation:
      return "rotation";
    case LayoutKind::linear:
      break;
  }
  return "linear";
}

LayoutKind parse_layout_kind(const std::string& name) {
  if (name == "linear") {
    return LayoutKind::linear;
  }
  if (name == "xor") {
    return LayoutKind::xor_swizzle;
  }
  if (name == "rotation") {
    return LayoutKind::rotation;
  }
  throw parse_error("unknown layout '" + name +
                    "' (valid: linear, xor, rotation)");
}

}  // namespace wcm::gpusim
