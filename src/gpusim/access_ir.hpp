#pragma once
// Parametric access-pattern IR: the language in which each simulated
// kernel *declares* its shared-memory addressing once, symbolically,
// instead of only exhibiting it through recorded WCMT2 traces.
//
// A KernelDesc lists step *groups* — families of warp-synchronous trace
// steps that share one addressing shape — in program order, mirroring the
// WCMT2 event kinds (read/write steps, barriers, fills, atomic sections).
// Addresses are linear forms over a per-kernel symbol table:
//
//   linform  ::= c0 + c1*sym1 + c2*sym2 + ...          (integer ci)
//   sym      ::= parameter | warp-shift
//
// Parameters (E, the inner step s, ...) carry a declared inclusive range
// and an optional congruence (E odd, say); the symbolic prover
// (analyze/symbolic) derives bounds valid for *every* valuation in range.
// Warp-shift symbols stand for per-warp base offsets (warp_start,
// warp_start*E, ...) that are provably ≡ 0 (mod w) and shift every lane of
// the step equally; shifting a whole warp step by a multiple of w rotates
// banks uniformly under both plain and padded layouts, so conflict degree
// is invariant and the prover may pin them to zero when enumerating.
//
// Two pattern shapes cover every kernel in src/sort plus the block scan:
//
//  * pieces — piecewise-affine, data-independent: lane ranges with
//    addr(lane) = base + stride*(lane - lane_lo).  A full-warp affine step
//    is one piece; the bitonic bit-interleave and the Hillis–Steele gather
//    are a few pieces.
//  * window — data-dependent (merge reads, search probes, histogram
//    updates): each lane reads somewhere inside a region made of
//    `nranges` contiguous address ranges of total length `span`.  A
//    contiguous range of L logical words holds at most ceil(L/w) addresses
//    per bank (plus one straddled block per range under padding), which is
//    exactly how Theorem 3's per-step degree E arises from a w*E merge
//    window.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/layout.hpp"
#include "util/math.hpp"

namespace wcm::gpusim::ir {

enum class SymRole : unsigned char {
  parameter,   ///< enumerable range parameter (E, s, dist, ...)
  warp_shift,  ///< per-warp base offset, ≡ 0 (mod w), uniform across lanes
};

/// c + sum(coeff * symbol); terms sorted by symbol index, no zero coeffs.
struct LinForm {
  i64 c = 0;
  std::vector<std::pair<int, i64>> terms;

  [[nodiscard]] static LinForm constant(i64 v);
  [[nodiscard]] static LinForm sym(int index, i64 coeff = 1);
  [[nodiscard]] bool is_constant() const noexcept { return terms.empty(); }
  /// Identically zero (the default-constructed form).
  [[nodiscard]] bool is_zero() const noexcept {
    return c == 0 && terms.empty();
  }

  LinForm& add(const LinForm& o, i64 scale = 1);
};

[[nodiscard]] LinForm operator+(LinForm a, const LinForm& b);
[[nodiscard]] LinForm operator-(LinForm a, const LinForm& b);
[[nodiscard]] LinForm scaled(LinForm a, i64 k);
[[nodiscard]] bool operator==(const LinForm& a, const LinForm& b) noexcept;
[[nodiscard]] inline bool operator!=(const LinForm& a,
                                     const LinForm& b) noexcept {
  return !(a == b);
}

struct Symbol {
  std::string name;
  SymRole role = SymRole::parameter;
  i64 lo = 0;  ///< declared inclusive range
  i64 hi = 0;
  u64 mod = 1;  ///< declared congruence: value ≡ rem (mod mod); 1 = none
  i64 rem = 0;
  /// If >= 0: the effective upper bound is value(symbols[upper_sym]) - 1
  /// (inner loops like s in [0, E)).  Must reference an earlier symbol.
  int upper_sym = -1;
  /// Warp-shift extent, for the static verifier (analyze/passes).  The
  /// declared interval of a warp_shift is pinned to [0, 0] because the
  /// conflict prover factors the uniform bank rotation out; the def-use /
  /// OOB passes instead need the *true* values the shift takes:
  /// {0, step_form, 2*step_form, ..., max_form}.  A zero step_form means
  /// the extent is undeclared and the shift really is the constant 0.
  /// Both forms may only reference earlier symbols.
  LinForm max_form;
  LinForm step_form;
};

/// One affine lane range: addr(lane) = base + stride * (lane - lane_lo)
/// for lane in [lane_lo, lane_hi].
struct LanePiece {
  u32 lane_lo = 0;
  u32 lane_hi = 0;  ///< inclusive
  LinForm base;
  LinForm stride;
};

enum class PatternKind : unsigned char { pieces, window };

struct AccessPattern {
  PatternKind kind = PatternKind::pieces;
  std::vector<LanePiece> pieces;  // kind == pieces
  // kind == window:
  u32 active = 0;   ///< max lanes that may issue in one step
  LinForm span;     ///< total length of the address region(s)
  LinForm nranges;  ///< contiguous ranges the region splits into
};

enum class GroupKind : unsigned char { read, write, barrier, fill };

/// A family of warp steps sharing one addressing shape.
struct StepGroup {
  std::string name;
  GroupKind kind = GroupKind::read;
  bool atomic = false;
  /// Lock-step pairwise merge read: the site Theorems 3/9 bound.
  bool theorem_site = false;
  /// Lane participation is clamped at the tile edge (a partial final warp
  /// when w does not divide the thread count).  Masked groups keep every
  /// conflict bound sound — dropping lanes never raises degree — but opt
  /// out of the def-use coverage proof (analyze/passes).
  bool masked = false;
  /// Declared address region [region_lo, region_hi] (inclusive) for fill
  /// and window groups; pieces groups carry their footprint in the pieces
  /// themselves.  Fills initialize the region, window reads stay inside it.
  bool has_region = false;
  LinForm region_lo;
  LinForm region_hi;
  AccessPattern pattern;
  std::string repeat;  ///< documentation: how often the step recurs
};

struct KernelDesc {
  std::string kernel;
  u32 w = 32;
  u32 b = 64;
  u32 pad = 0;
  /// Bank permutation the engine stages its tile under (gpusim/layout.hpp);
  /// the prover's bank relations are derived for this layout.
  LayoutKind layout = LayoutKind::linear;
  /// Total shared-memory words the kernel owns, as a form over the symbol
  /// table (zero = undeclared); every access must land in [0, words).
  LinForm words;
  std::vector<Symbol> symbols;
  std::vector<StepGroup> groups;

  int add_symbol(std::string name, SymRole role, i64 lo, i64 hi, u64 mod = 1,
                 i64 rem = 0, int upper_sym = -1);
  [[nodiscard]] int find_symbol(std::string_view name) const noexcept;

  /// Append another kernel's groups, unifying symbols by name (matching
  /// names must agree on role/range/congruence) and remapping term
  /// indices.  Lets composite kernels (blocksort = register sort + merge
  /// rounds) reuse sub-kernel describers.
  void append(const KernelDesc& other);
};

// -- convenience constructors for the lifters ------------------------------

[[nodiscard]] StepGroup barrier_group(std::string name);
[[nodiscard]] StepGroup fill_group(std::string name, std::string repeat);
/// Single full-range affine piece over lanes [0, lanes-1].
[[nodiscard]] StepGroup affine_group(std::string name, GroupKind kind,
                                     u32 lanes, LinForm base, LinForm stride,
                                     std::string repeat);
[[nodiscard]] StepGroup window_group(std::string name, GroupKind kind,
                                     u32 active, LinForm span, LinForm nranges,
                                     std::string repeat, bool atomic = false,
                                     bool theorem_site = false);
/// Attach a declared address region [lo, hi] (inclusive) to a group.
[[nodiscard]] StepGroup with_region(StepGroup g, LinForm lo, LinForm hi);

// -- rendering (the grammar documented in docs/LINT.md) --------------------

[[nodiscard]] std::string to_string(const LinForm& lf, const KernelDesc& desc);
[[nodiscard]] std::string to_string(const AccessPattern& p,
                                    const KernelDesc& desc);
[[nodiscard]] const char* to_string(GroupKind k) noexcept;

}  // namespace wcm::gpusim::ir
