#pragma once
// Shared-memory address layouts: the defense-side counterpart of the
// worst-case constructions.  A layout maps logical word addresses to
// physical (banked) addresses; the attack engineering in core/ assumes the
// linear layout, and the three alternatives below are the classic
// mitigations the defense literature builds bank-conflict-free algorithms
// on (Afshani & Sitchinava; Sitchinava & Weichert):
//
//   linear      physical = logical + pad * floor(logical / w): the identity
//               map, optionally Dotsenko-padded (pad unused words after
//               every w logical words).  Bank = (c + pad*r) mod w for
//               logical address r*w + c.
//   xor_swizzle row r stores logical column c at physical column
//               c XOR (r mod w): a per-row bank permutation that needs no
//               extra memory (w must be a power of two).  Bank =
//               (c ^ (r mod w)) + pad*r mod w (pad composes but is
//               unnecessary).
//   rotation    row r stores logical column c at physical column
//               (c + r) mod w: the cyclic-shift permutation, also
//               memory-free and valid for any w.
//
// All three keep each row's w logical words in w distinct banks, and map
// a logical *column* (the stride-w access the worst-case inputs weaponize)
// to w distinct banks for xor/rotation (any w) and for linear when
// gcd(pad, w) = 1.  Values are always addressed logically; only conflict
// accounting sees physical addresses.

#include <cstddef>
#include <string>

#include "util/math.hpp"

namespace wcm::gpusim {

enum class LayoutKind : unsigned char {
  linear,       ///< identity columns (optionally padded)
  xor_swizzle,  ///< column c of row r at c ^ (r mod w); w must be 2^k
  rotation,     ///< column c of row r at (c + r) mod w
};

/// Logical->physical shared-address map for a w-bank memory.  pad extra
/// words are reserved after every row of w logical words; for the permuted
/// kinds each row occupies a full physical row of w + pad words even when
/// the tile's last row is partial.
struct SharedLayout {
  u32 w = 32;
  u32 pad = 0;
  LayoutKind kind = LayoutKind::linear;

  /// Physical column of logical column `col` within row `row`.
  [[nodiscard]] u32 permute(u32 col, std::size_t row) const noexcept {
    switch (kind) {
      case LayoutKind::xor_swizzle:
        return col ^ static_cast<u32>(row % w);
      case LayoutKind::rotation:
        return (col + static_cast<u32>(row % w)) % w;
      case LayoutKind::linear:
        break;
    }
    return col;
  }

  [[nodiscard]] std::size_t physical(std::size_t logical) const noexcept {
    const std::size_t row = logical / w;
    const u32 col = static_cast<u32>(logical % w);
    return row * (w + pad) + permute(col, row);
  }

  /// Bank holding a logical address: physical mod w.
  [[nodiscard]] u32 bank(std::size_t logical) const noexcept {
    return static_cast<u32>(physical(logical) % w);
  }

  /// Physical words needed to hold `logical_words` logical words.
  [[nodiscard]] std::size_t physical_words(
      std::size_t logical_words) const noexcept {
    if (logical_words == 0) {
      return 0;
    }
    if (kind == LayoutKind::linear) {
      return physical(logical_words - 1) + 1;
    }
    return ((logical_words - 1) / w + 1) * (w + pad);
  }
};

[[nodiscard]] const char* to_string(LayoutKind kind) noexcept;

/// Parse "linear" | "xor" | "rotation"; throws wcm::parse_error otherwise.
[[nodiscard]] LayoutKind parse_layout_kind(const std::string& name);

}  // namespace wcm::gpusim
