#pragma once
// Event-driven block scheduler: assigns thread blocks (with per-block cycle
// costs) to SM residency slots in launch order, the way the hardware's
// global work distributor does.  Where the analytic cost model uses
// ceil(blocks / slots) whole waves, the timeline captures partial-wave tail
// effects and per-block cost variance (a worst-case round has perfectly
// uniform blocks; random rounds do not).

#include <span>
#include <vector>

#include "gpusim/device.hpp"

namespace wcm::gpusim {

struct TimelineResult {
  double makespan_cycles = 0.0;   ///< finish time of the last block
  double busy_cycles = 0.0;       ///< sum over blocks of their costs
  double utilization = 0.0;       ///< busy / (slots * makespan)
  std::size_t slots = 0;          ///< concurrent residency slots used
};

/// Schedule `block_cycles` onto `slots` concurrent residency slots, in
/// order, each block starting on the earliest-available slot (greedy list
/// scheduling — the hardware policy).  Requires slots > 0.
[[nodiscard]] TimelineResult schedule_blocks(
    std::span<const double> block_cycles, std::size_t slots);

/// Convenience: slots from the device's occupancy for the launch shape.
[[nodiscard]] TimelineResult schedule_on_device(
    std::span<const double> block_cycles, const Device& dev,
    u32 threads_per_block, std::size_t shared_bytes_per_block);

}  // namespace wcm::gpusim
