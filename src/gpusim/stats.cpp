#include "gpusim/stats.hpp"

namespace wcm::gpusim {

KernelStats& KernelStats::operator+=(const KernelStats& o) noexcept {
  shared += o.shared;
  shared_merge_reads += o.shared_merge_reads;
  shared_search += o.shared_search;
  global_transactions += o.global_transactions;
  global_requests += o.global_requests;
  binary_search_steps += o.binary_search_steps;
  warp_merge_steps += o.warp_merge_steps;
  register_compare_steps += o.register_compare_steps;
  blocks_launched += o.blocks_launched;
  elements_processed += o.elements_processed;
  return *this;
}

double mean_serialization(const KernelStats& s) noexcept {
  if (s.shared.steps == 0) {
    return 0.0;
  }
  return static_cast<double>(s.shared.serialization_cycles) /
         static_cast<double>(s.shared.steps);
}

namespace {
double mean_over_steps(const dmm::MachineStats& m) noexcept {
  if (m.steps == 0) {
    return 0.0;
  }
  return static_cast<double>(m.serialization_cycles) /
         static_cast<double>(m.steps);
}
}  // namespace

double beta2(const KernelStats& s) noexcept {
  return mean_over_steps(s.shared_merge_reads);
}

double beta1(const KernelStats& s) noexcept {
  return mean_over_steps(s.shared_search);
}

double conflicts_per_element(const KernelStats& s) noexcept {
  if (s.elements_processed == 0) {
    return 0.0;
  }
  return static_cast<double>(s.shared.replays) /
         static_cast<double>(s.elements_processed);
}

}  // namespace wcm::gpusim
