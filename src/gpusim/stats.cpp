#include "gpusim/stats.hpp"

#include <string>

#include "telemetry/registry.hpp"

namespace wcm::gpusim {

KernelStats& KernelStats::operator+=(const KernelStats& o) noexcept {
  shared += o.shared;
  shared_merge_reads += o.shared_merge_reads;
  shared_search += o.shared_search;
  global_transactions += o.global_transactions;
  global_requests += o.global_requests;
  binary_search_steps += o.binary_search_steps;
  warp_merge_steps += o.warp_merge_steps;
  register_compare_steps += o.register_compare_steps;
  blocks_launched += o.blocks_launched;
  elements_processed += o.elements_processed;
  return *this;
}

double mean_serialization(const KernelStats& s) noexcept {
  if (s.shared.steps == 0) {
    return 0.0;
  }
  return static_cast<double>(s.shared.serialization_cycles) /
         static_cast<double>(s.shared.steps);
}

namespace {
double mean_over_steps(const dmm::MachineStats& m) noexcept {
  if (m.steps == 0) {
    return 0.0;
  }
  return static_cast<double>(m.serialization_cycles) /
         static_cast<double>(m.steps);
}
}  // namespace

double beta2(const KernelStats& s) noexcept {
  return mean_over_steps(s.shared_merge_reads);
}

double beta1(const KernelStats& s) noexcept {
  return mean_over_steps(s.shared_search);
}

double conflicts_per_element(const KernelStats& s) noexcept {
  if (s.elements_processed == 0) {
    return 0.0;
  }
  return static_cast<double>(s.shared.replays) /
         static_cast<double>(s.elements_processed);
}

void record_round_telemetry(const char* engine, const std::string& round,
                            u32 e, u32 pad, const KernelStats& stats) {
  if (!telemetry::enabled()) {
    return;
  }
  telemetry::Registry& reg = telemetry::registry();
  const telemetry::Labels labels = {{"engine", engine},
                                    {"round", round},
                                    {"E", std::to_string(e)},
                                    {"pad", std::to_string(pad)}};
  const auto count = [&](const char* name, std::size_t v) {
    reg.counter(name, labels).add(static_cast<u64>(v));
  };
  count("sim.round.replays", stats.shared.replays);
  count("sim.round.serialization_cycles", stats.shared.serialization_cycles);
  count("sim.round.conflicting_accesses", stats.shared.conflicting_accesses);
  count("sim.round.requests", stats.shared.requests);
  count("sim.round.merge_read.replays", stats.shared_merge_reads.replays);
  count("sim.round.merge_read.serialization_cycles",
        stats.shared_merge_reads.serialization_cycles);
  count("sim.round.search.replays", stats.shared_search.replays);
  count("sim.round.global_transactions", stats.global_transactions);
  count("sim.round.elements", stats.elements_processed);
  reg.counter("sim.rounds", {{"engine", engine}}).add(1);
  reg.histogram("sim.replays_per_round", {{"engine", engine}},
                {0, 10, 100, 1000, 10000, 100000, 1000000})
      .observe(static_cast<double>(stats.shared.replays));
}

}  // namespace wcm::gpusim
