#pragma once
// Banked shared memory for one simulated thread block: a thin, warp-oriented
// wrapper over the formal DMM machine.  Every warp-wide access is one
// synchronous DMM step; inactive lanes simply do not submit a request.
// Conflict statistics accumulate in the underlying dmm::Machine and are
// read out per kernel by the sort engine.

#include <optional>
#include <span>
#include <vector>

#include "dmm/machine.hpp"
#include "gpusim/layout.hpp"
#include "util/math.hpp"

namespace wcm::gpusim {

using dmm::word;

/// A lane's read request: lane id within the warp and shared address.
struct LaneRead {
  u32 lane = 0;
  std::size_t addr = 0;
};

/// A lane's write request.
struct LaneWrite {
  u32 lane = 0;
  std::size_t addr = 0;
  word value = 0;
};

class SharedMemory {
 public:
  /// `words` counts *logical* words; with pad > 0 the backing store is
  /// correspondingly larger.  All addresses in the public API are logical;
  /// bank-conflict accounting uses the physical (padded) addresses.
  SharedMemory(u32 warp_size, std::size_t words, u32 pad = 0);

  /// Full layout control (padding and/or a per-row bank permutation, see
  /// gpusim/layout.hpp); the layout's w is the warp size.
  SharedMemory(const SharedLayout& layout, std::size_t words);

  [[nodiscard]] u32 warp_size() const noexcept { return warp_size_; }
  [[nodiscard]] std::size_t words() const noexcept { return logical_words_; }
  [[nodiscard]] const SharedLayout& layout() const noexcept { return layout_; }

  /// One warp-wide load; returns the value read by each request, in request
  /// order.  Lanes must be distinct.  Accounted as one DMM step.
  std::vector<word> warp_read(std::span<const LaneRead> reads);

  /// One warp-wide store.  Accounted as one DMM step.
  void warp_write(std::span<const LaneWrite> writes);

  /// Execution barrier (__syncthreads): free at the machine level, but
  /// recorded in an attached trace — the race detector only pairs accesses
  /// within one barrier interval.  Kernels emit one at every sync point,
  /// including block boundaries when one SharedMemory hosts several
  /// simulated blocks in sequence.
  void barrier();

  /// Bracket a run of warp_read/warp_write steps that model atomic
  /// read-modify-writes (shared histogram updates): recorded steps carry
  /// the atomic tag, which exempts atomic/atomic pairs from race pairing.
  void set_atomic_section(bool on) noexcept { atomic_section_ = on; }

  /// Host-side (unaccounted) access for kernel setup / result extraction.
  /// Recorded as an initialization marker in an attached trace.
  void fill(std::span<const word> values, std::size_t base = 0);
  [[nodiscard]] std::vector<word> dump(std::size_t base,
                                       std::size_t count) const;
  [[nodiscard]] word peek(std::size_t addr) const {
    return machine_.peek(layout_.physical(addr));
  }
  void poke(std::size_t addr, word v) {
    machine_.poke(layout_.physical(addr), v);
  }

  [[nodiscard]] const dmm::MachineStats& stats() const noexcept {
    return machine_.stats();
  }
  void reset_stats() noexcept { machine_.reset_stats(); }

  /// Attach an access-trace recorder (see gpusim/trace.hpp); nullptr
  /// detaches.  The recorder adopts this memory's warp size and word count
  /// and must outlive its attachment.
  void attach_trace(class TraceRecorder* recorder);

 private:
  u32 warp_size_;
  SharedLayout layout_;
  std::size_t logical_words_;
  dmm::Machine machine_;
  class TraceRecorder* recorder_ = nullptr;
  bool atomic_section_ = false;
  std::vector<dmm::Request> scratch_;  // reused request buffer
  std::vector<word> scratch_reads_;
};

}  // namespace wcm::gpusim
