#pragma once
// Event counters produced by one simulated kernel (one merge round, the
// block sort, or the partition pass).  The cost model converts these into
// modeled time; benches and tests read them directly.

#include <string>
#include <vector>

#include "dmm/machine.hpp"
#include "util/math.hpp"

namespace wcm::gpusim {

struct KernelStats {
  /// Shared-memory contention totals (from SharedMemory / dmm::Machine).
  dmm::MachineStats shared;
  /// Subset of `shared`: the lock-step merge reads only (the accesses the
  /// paper's beta_2 and the worst-case construction are about).
  dmm::MachineStats shared_merge_reads;
  /// Subset of `shared`: the in-block merge-path binary-search probes (the
  /// paper's beta_1).
  dmm::MachineStats shared_search;

  /// Coalesced 32-lane global-memory transactions (loads + stores).
  std::size_t global_transactions = 0;
  /// Individual global element accesses (for coalescing-efficiency checks).
  std::size_t global_requests = 0;

  /// Dependent global-latency round trips on the critical path of one block
  /// (binary-search iterations of the partitioning stage), summed over
  /// blocks; divide by blocks_launched for the per-block chain length.
  std::size_t binary_search_steps = 0;

  /// Lock-step merge iterations, summed over warps.
  std::size_t warp_merge_steps = 0;

  /// Register-level compare-exchanges of the base case's odd-even sorting
  /// network, summed over warps (no memory traffic, compute only).
  std::size_t register_compare_steps = 0;

  std::size_t blocks_launched = 0;
  std::size_t elements_processed = 0;

  KernelStats& operator+=(const KernelStats& o) noexcept;
};

/// A named kernel's stats (e.g. "block-sort", "round 3 partition").
struct RoundStats {
  std::string name;
  KernelStats kernel;
  double modeled_seconds = 0.0;
};

/// Mean serialization cycles per warp-wide shared access over all accesses.
[[nodiscard]] double mean_serialization(const KernelStats& s) noexcept;

/// beta_2: mean serialization per lock-step merge read (Karsin et al.
/// measured ~2.2 on random inputs; the construction drives it to ~E).
[[nodiscard]] double beta2(const KernelStats& s) noexcept;

/// beta_1: mean serialization per merge-path binary-search probe.
[[nodiscard]] double beta1(const KernelStats& s) noexcept;

/// Bank conflicts per element, the Figure 6 y-axis: replay wavefronts (the
/// metric NVIDIA's profiler reports) divided by elements processed.
[[nodiscard]] double conflicts_per_element(const KernelStats& s) noexcept;

/// Feed one finished round's counters into the telemetry registry as
/// `sim.round.*{E=..,engine=..,pad=..,round=..}` counters plus the
/// per-engine `sim.replays_per_round` histogram (docs/TELEMETRY.md).
/// Because every round is exported with its exact KernelStats, summing
/// the `sim.round.replays` rows of a snapshot reproduces
/// `SortReport::totals.shared.replays` bit-for-bit — the cross-check the
/// telemetry tests enforce.  No-op unless telemetry::enabled().
void record_round_telemetry(const char* engine, const std::string& round,
                            u32 e, u32 pad, const KernelStats& stats);

}  // namespace wcm::gpusim
