#include "gpusim/shared_memory.hpp"

#include "gpusim/trace.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace wcm::gpusim {

SharedMemory::SharedMemory(u32 warp_size, std::size_t words, u32 pad)
    : SharedMemory(SharedLayout{warp_size, pad}, words) {}

SharedMemory::SharedMemory(const SharedLayout& layout, std::size_t words)
    : warp_size_(layout.w),
      layout_(layout),
      logical_words_(words),
      machine_(layout.w, layout_.physical_words(words)) {
  WCM_CHECK_CONFIG(layout.w >= 1, "warp size must be positive");
  // Only the xor permutation needs a power of two: `col ^ (row % w)` is
  // bijective on [0, w) iff w is a power of two, while the linear and
  // rotation layouts are plain mod-w arithmetic for any width (the w = 3
  // describer cross-check runs non-power-of-two warps through here).
  WCM_CHECK_CONFIG(layout.kind != LayoutKind::xor_swizzle || is_pow2(layout.w),
                   "the xor layout needs a power-of-two warp size");
  WCM_FAILPOINT("sim.smem.alloc", simulation_error,
                "injected shared-memory allocation failure");
}

void SharedMemory::attach_trace(TraceRecorder* recorder) {
  recorder_ = recorder;
  if (recorder_ != nullptr) {
    recorder_->on_attach(warp_size_, logical_words_);
  }
}

void SharedMemory::barrier() {
  if (recorder_ != nullptr) {
    recorder_->on_barrier();
  }
}

std::vector<word> SharedMemory::warp_read(std::span<const LaneRead> reads) {
  WCM_CHECK_SIM(reads.size() <= warp_size_, "more requests than lanes");
  WCM_FAILPOINT("sim.smem.invariant", simulation_error,
                "injected mid-access invariant break");
  if (recorder_ != nullptr) {
    recorder_->on_read(reads, atomic_section_);
  }
  scratch_.clear();
  for (const LaneRead& r : reads) {
    WCM_CHECK_SIM(r.lane < warp_size_, "lane out of range");
    WCM_CHECK_SIM(r.addr < logical_words_, "read out of bounds");
    scratch_.push_back({r.lane, layout_.physical(r.addr), dmm::Op::read, 0});
  }
  machine_.step(scratch_, &scratch_reads_);
  return scratch_reads_;
}

void SharedMemory::warp_write(std::span<const LaneWrite> writes) {
  WCM_CHECK_SIM(writes.size() <= warp_size_, "more requests than lanes");
  if (recorder_ != nullptr) {
    recorder_->on_write(writes, atomic_section_);
  }
  scratch_.clear();
  for (const LaneWrite& w : writes) {
    WCM_CHECK_SIM(w.lane < warp_size_, "lane out of range");
    WCM_CHECK_SIM(w.addr < logical_words_, "write out of bounds");
    scratch_.push_back(
        {w.lane, layout_.physical(w.addr), dmm::Op::write, w.value});
  }
  machine_.step(scratch_, nullptr);
}

void SharedMemory::fill(std::span<const word> values, std::size_t base) {
  WCM_EXPECTS(base + values.size() <= logical_words_, "fill out of bounds");
  if (recorder_ != nullptr && !values.empty()) {
    recorder_->on_fill(base, values.size());
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    machine_.poke(layout_.physical(base + i), values[i]);
  }
}

std::vector<word> SharedMemory::dump(std::size_t base,
                                     std::size_t count) const {
  WCM_EXPECTS(base + count <= logical_words_, "dump out of bounds");
  std::vector<word> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = machine_.peek(layout_.physical(base + i));
  }
  return out;
}

}  // namespace wcm::gpusim
