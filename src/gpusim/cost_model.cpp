#include "gpusim/cost_model.hpp"

#include <algorithm>

#include "gpusim/occupancy.hpp"
#include "util/check.hpp"

namespace wcm::gpusim {

KernelTime& KernelTime::operator+=(const KernelTime& o) noexcept {
  seconds += o.seconds;
  t_bandwidth += o.t_bandwidth;
  t_latency += o.t_latency;
  t_shared += o.t_shared;
  t_compute += o.t_compute;
  t_overhead += o.t_overhead;
  return *this;
}

KernelTime estimate_kernel_time(const Device& dev, const LaunchConfig& launch,
                                const KernelStats& stats,
                                const Calibration& cal) {
  WCM_EXPECTS(launch.blocks > 0, "kernel with no blocks");
  const Occupancy occ =
      occupancy(dev, launch.threads_per_block, launch.shared_bytes_per_block);
  WCM_EXPECTS(occ.resident_blocks > 0, "launch does not fit on the device");

  const double clock_hz = dev.clock_ghz * 1e9;
  const double waves = static_cast<double>(
      ceil_div(launch.blocks,
               static_cast<u64>(occ.resident_blocks) * dev.sm_count));
  const double hiding =
      std::min(1.0, static_cast<double>(occ.resident_warps) /
                        dev.warps_for_peak);

  KernelTime t;
  constexpr double kTransactionBytes = 128.0;  // 32 lanes x 4-byte keys
  t.t_bandwidth = static_cast<double>(stats.global_transactions) *
                  kTransactionBytes / (dev.mem_bandwidth_gbs * 1e9);

  const double chain = static_cast<double>(stats.binary_search_steps) /
                       static_cast<double>(launch.blocks);
  t.t_latency = waves * chain * dev.global_latency_cycles / clock_hz;

  // Base accesses are latency-bound: they need full occupancy to hide the
  // pipeline latency (divide by hiding).  Replay wavefronts are pipe-bound:
  // at full occupancy every replay displaces another warp's access, but at
  // lower occupancy the pipe has idle cycles and replays partially overlap
  // other warps' stalls (multiply by hiding).  This asymmetry reproduces
  // the paper's Sec. IV-B finding that the 75%-occupancy E=17,b=256
  // configuration is slower on random inputs yet suffers a smaller
  // relative slowdown on the constructed inputs.
  t.t_shared = (static_cast<double>(stats.shared.steps) / hiding +
                static_cast<double>(stats.shared.replays) * hiding) /
               (static_cast<double>(dev.sm_count) *
                dev.shared_wavefronts_per_cycle * clock_hz);

  const double warp_issue_per_sm =
      static_cast<double>(dev.cores_per_sm) / dev.warp_size;
  t.t_compute = static_cast<double>(stats.warp_merge_steps) *
                cal.compute_cycles_per_merge_step /
                (static_cast<double>(dev.sm_count) * warp_issue_per_sm *
                 clock_hz * hiding);

  t.t_overhead = cal.launch_overhead_s;
  t.seconds = std::max(t.t_bandwidth, t.t_shared + t.t_compute) +
              t.t_latency + t.t_overhead;
  return t;
}

}  // namespace wcm::gpusim
