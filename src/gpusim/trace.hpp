#pragma once
// Access-trace recording and replay.  A Trace captures the warp-wide
// shared-memory access stream of a simulated kernel (logical addresses, so
// it is layout-independent); replaying it under a different SharedLayout
// re-prices the same algorithm under a different banking scheme without
// re-running the sort — e.g. "what would this exact access stream cost
// with one word of padding?".  Traces serialize to a simple line-oriented
// text format for offline analysis.
//
// Format (one line per warp-wide step):
//   R lane:addr lane:addr ...
//   W lane:addr ...

#include <iosfwd>
#include <vector>

#include "dmm/machine.hpp"
#include "gpusim/shared_memory.hpp"

namespace wcm::gpusim {

struct TraceStep {
  bool is_write = false;
  /// (lane, logical address) per active lane.
  std::vector<std::pair<u32, std::size_t>> accesses;
};

struct Trace {
  u32 warp_size = 32;
  std::vector<TraceStep> steps;

  [[nodiscard]] std::size_t total_accesses() const noexcept;
};

/// Records every warp_read / warp_write of a SharedMemory into a Trace.
/// Attach with SharedMemory::attach_trace; detach by attaching nullptr or
/// destroying the SharedMemory first.
class TraceRecorder {
 public:
  explicit TraceRecorder(u32 warp_size) { trace_.warp_size = warp_size; }

  void on_read(std::span<const LaneRead> reads);
  void on_write(std::span<const LaneWrite> writes);

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace take() noexcept { return std::move(trace_); }

 private:
  Trace trace_;
};

/// Replay a trace's access stream through a fresh DMM machine under the
/// given layout and return the contention statistics.  Replaying under the
/// layout the trace was recorded with reproduces the live stats exactly
/// (asserted by tests).
[[nodiscard]] dmm::MachineStats replay_stats(const Trace& trace,
                                             const SharedLayout& layout);

/// Serialize / parse the text format.  Throws wcm::contract_error on
/// malformed input.
void write_trace(std::ostream& os, const Trace& trace);
[[nodiscard]] Trace read_trace(std::istream& is);

}  // namespace wcm::gpusim
