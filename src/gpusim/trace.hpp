#pragma once
// Access-trace recording and replay.  A Trace captures the warp-wide
// shared-memory access stream of a simulated kernel (logical addresses, so
// it is layout-independent); replaying it under a different SharedLayout
// re-prices the same algorithm under a different banking scheme without
// re-running the sort — e.g. "what would this exact access stream cost
// with one word of padding?".  Traces serialize to a simple line-oriented
// text format for offline analysis.
//
// Format v2 (WCMT2) — one line per event:
//   WCMT2 <warp_size> <logical_words> <steps>
//   R lane:addr lane:addr ...      warp-wide load
//   W lane:addr ...                warp-wide store
//   AR lane:addr ... / AW ...      atomic load / store (read-modify-write
//                                  halves; exempt from race pairing)
//   B                              execution barrier (__syncthreads)
//   F <base> <count>               host-side fill of [base, base+count)
//
// The active mask of a step is implied by its lane set (TraceStep::
// active_mask).  v1 streams (`WCMT <warp_size> <steps>`, R/W lines only)
// still parse; they carry no barriers and an unknown word count (0).

#include <iosfwd>
#include <vector>

#include "dmm/machine.hpp"
#include "gpusim/shared_memory.hpp"

namespace wcm::gpusim {

/// Kind of one trace event.  `read`/`write` are warp-wide DMM steps;
/// `barrier` and `fill` are zero-cost markers consumed by the static
/// analyzer (see analyze/analyzer.hpp).
enum class StepKind : unsigned char { read, write, barrier, fill };

struct TraceStep {
  StepKind kind = StepKind::read;
  /// True for the halves of an atomic read-modify-write (histogram
  /// updates); the race detector exempts atomic/atomic pairs.
  bool atomic = false;
  /// (lane, logical address) per active lane; read/write steps only.
  std::vector<std::pair<u32, std::size_t>> accesses;
  /// Initialized range; fill steps only.
  std::size_t fill_base = 0;
  std::size_t fill_count = 0;

  [[nodiscard]] bool is_write() const noexcept {
    return kind == StepKind::write;
  }
  [[nodiscard]] bool is_access() const noexcept {
    return kind == StepKind::read || kind == StepKind::write;
  }
  /// Bit l set iff lane l is active in this step (warp sizes <= 64).
  [[nodiscard]] u64 active_mask() const noexcept;
};

struct Trace {
  u32 warp_size = 32;
  /// Logical words of the recorded SharedMemory; 0 when unknown (v1).
  std::size_t logical_words = 0;
  std::vector<TraceStep> steps;

  [[nodiscard]] std::size_t total_accesses() const noexcept;
  [[nodiscard]] std::size_t access_steps() const noexcept;
  [[nodiscard]] std::size_t barrier_count() const noexcept;
};

/// Records every warp_read / warp_write / barrier / fill of a SharedMemory
/// into a Trace.  Attach with SharedMemory::attach_trace; detach by
/// attaching nullptr or destroying the SharedMemory first.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(u32 warp_size) { trace_.warp_size = warp_size; }

  /// Called by SharedMemory::attach_trace: adopts the memory's geometry
  /// (and insists on a consistent one once steps were recorded).
  void on_attach(u32 warp_size, std::size_t logical_words);

  void on_read(std::span<const LaneRead> reads, bool atomic = false);
  void on_write(std::span<const LaneWrite> writes, bool atomic = false);
  void on_barrier();
  void on_fill(std::size_t base, std::size_t count);

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] Trace take() noexcept { return std::move(trace_); }

 private:
  Trace trace_;
};

/// Replay a trace's access stream through a fresh DMM machine under the
/// given layout and return the contention statistics.  Barrier and fill
/// markers are free.  Replaying under the layout the trace was recorded
/// with reproduces the live stats exactly (asserted by tests).
[[nodiscard]] dmm::MachineStats replay_stats(const Trace& trace,
                                             const SharedLayout& layout);

/// Per-step costs of the same replay, index-aligned with trace.steps
/// (zero-cost entries for barriers and fills).  This is the measured side
/// of the stride analyzer's predicted-vs-measured cross-check.
[[nodiscard]] std::vector<dmm::StepCost> replay_step_costs(
    const Trace& trace, const SharedLayout& layout);

/// Serialize / parse the text format.  write_trace always emits v2;
/// read_trace accepts v1 and v2 and throws wcm::parse_error on malformed
/// input (bad magic, truncated streams, duplicate lanes within a step,
/// lane ids >= warp_size, trailing garbage).
void write_trace(std::ostream& os, const Trace& trace);
[[nodiscard]] Trace read_trace(std::istream& is);

}  // namespace wcm::gpusim
