#include "sort/key_value.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace wcm::sort {

PairSortResult pairwise_merge_sort_pairs(std::span<const word> keys,
                                         std::span<const word> values,
                                         const SortConfig& cfg,
                                         const gpusim::Device& dev,
                                         MergeSortLibrary lib) {
  WCM_EXPECTS(keys.size() == values.size(), "keys / values size mismatch");
  const std::size_t n = keys.size();

  PairSortResult result;
  // Key phase: the full functional simulation (drives all conflicts).
  result.report = pairwise_merge_sort(keys, cfg, dev, lib, &result.keys);

  // Value phase accounting: per round, every element's value moves once —
  // gathered through the merge index (25% coalescing efficiency, i.e. 4
  // transactions per warp of 32 gathers) and stored coalesced.
  const gpusim::Calibration cal = library_calibration(lib);
  const gpusim::LaunchConfig launch{n / cfg.tile(), cfg.b,
                                    cfg.shared_bytes()};
  constexpr std::size_t kGatherTransactionsPerWarp = 4;
  gpusim::KernelTime total{};
  for (auto& round : result.report.rounds) {
    gpusim::KernelStats& s = round.kernel;
    s.global_requests += 2 * n;
    s.global_transactions +=
        n / cfg.w * kGatherTransactionsPerWarp  // gather reads
        + n / cfg.w;                            // coalesced stores
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, s, cal).seconds;
    total += gpusim::estimate_kernel_time(dev, launch, s, cal);
  }
  // Rebuild the totals from the augmented rounds.
  result.report.totals = {};
  for (const auto& round : result.report.rounds) {
    result.report.totals += round.kernel;
  }
  result.report.total_time = total;

  // Functional value permutation: stable sort of indices by key reproduces
  // exactly what the simulated (stable, A-priority) merge tree computes.
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return keys[a] < keys[b];
                   });
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.values[i] = values[perm[i]];
  }
  return result;
}

}  // namespace wcm::sort
