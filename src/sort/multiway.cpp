#include "sort/multiway.hpp"

#include <algorithm>
#include <numeric>

#include "gpusim/shared_memory.hpp"
#include "sort/blocksort.hpp"
#include "sort/describe.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace wcm::sort {

std::size_t multiway_round_count(std::size_t n, const SortConfig& cfg,
                                 u32 ways) {
  WCM_EXPECTS(ways >= 2, "need at least 2 ways");
  std::size_t runs = n / cfg.tile();
  std::size_t rounds = 0;
  while (runs > 1) {
    runs = ceil_div(runs, ways);
    ++rounds;
  }
  return rounds;
}

namespace {

/// K-way co-rank at output rank `diag` over sorted runs: the per-run counts
/// (i_1..i_K) of the stable K-way merge prefix (ties go to the lowest run
/// index).  `steps` accumulates the value-domain bisection iterations (the
/// dependent probe chain the partitioning stage pays).
std::vector<std::size_t> kway_corank(
    const std::vector<std::span<const word>>& runs, std::size_t diag,
    std::size_t& steps) {
  std::vector<std::size_t> split(runs.size(), 0);
  std::size_t total = 0;
  for (const auto& r : runs) {
    total += r.size();
  }
  WCM_EXPECTS(diag <= total, "diagonal beyond the runs");
  if (diag == 0) {
    return split;
  }
  if (diag == total) {
    for (std::size_t k = 0; k < runs.size(); ++k) {
      split[k] = runs[k].size();
    }
    return split;
  }

  // Smallest value v with count_le(v) >= diag, by bisection on the value
  // domain spanned by the runs.
  word lo = runs[0].empty() ? 0 : runs[0].front();
  word hi = lo;
  for (const auto& r : runs) {
    if (!r.empty()) {
      lo = std::min(lo, r.front());
      hi = std::max(hi, r.back());
    }
  }
  const auto count_le = [&](word v) {
    std::size_t c = 0;
    for (const auto& r : runs) {
      c += static_cast<std::size_t>(
          std::upper_bound(r.begin(), r.end(), v) - r.begin());
    }
    return c;
  };
  while (lo < hi) {
    ++steps;
    const word mid = lo + (hi - lo) / 2;
    if (count_le(mid) >= diag) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const word v = lo;

  // Elements strictly below v always belong to the prefix; ties at v are
  // assigned in run order (stability).
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < runs.size(); ++k) {
    split[k] = static_cast<std::size_t>(
        std::lower_bound(runs[k].begin(), runs[k].end(), v) -
        runs[k].begin());
    assigned += split[k];
  }
  WCM_ENSURES(assigned <= diag, "bisection overshot the diagonal");
  std::size_t extra = diag - assigned;
  for (std::size_t k = 0; k < runs.size() && extra > 0; ++k) {
    const std::size_t ties = static_cast<std::size_t>(
        std::upper_bound(runs[k].begin(), runs[k].end(), v) -
        runs[k].begin()) - split[k];
    const std::size_t take = std::min(extra, ties);
    split[k] += take;
    extra -= take;
  }
  WCM_ENSURES(extra == 0, "tie distribution must reach the diagonal");
  return split;
}

/// One thread's K segments in shared memory.
struct ThreadKCtx {
  std::vector<std::pair<std::size_t, std::size_t>> segs;  // [begin, end)
  std::size_t out_begin = 0;

  [[nodiscard]] std::size_t elements() const noexcept {
    std::size_t n = 0;
    for (const auto& [b, e] : segs) {
      n += e - b;
    }
    return n;
  }
};

/// Account each thread's in-block quantile search: one binary search per
/// run per thread (log2(|seg|) warp-synchronous probe loads), the dominant
/// probe traffic of the K-way partition in shared memory.
void account_kway_searches(gpusim::SharedMemory& shm,
                           std::span<const ThreadKCtx> ctxs, u32 w,
                           gpusim::KernelStats& stats) {
  const std::size_t runs = ctxs.empty() ? 0 : ctxs[0].segs.size();
  std::vector<gpusim::LaneRead> probes;
  const auto before = shm.stats();
  for (std::size_t warp_start = 0; warp_start < ctxs.size();
       warp_start += w) {
    const std::size_t warp_end =
        std::min<std::size_t>(warp_start + w, ctxs.size());
    for (std::size_t k = 0; k < runs; ++k) {
      // Per-lane simulated bisection over its k-th segment.
      struct Range {
        std::size_t lo, hi;
      };
      std::vector<Range> r;
      for (std::size_t i = warp_start; i < warp_end; ++i) {
        r.push_back({ctxs[i].segs[k].first, ctxs[i].segs[k].second});
      }
      for (;;) {
        probes.clear();
        for (std::size_t i = 0; i < r.size(); ++i) {
          if (r[i].lo < r[i].hi) {
            probes.push_back({static_cast<u32>(i),
                              r[i].lo + (r[i].hi - r[i].lo) / 2});
          }
        }
        if (probes.empty()) {
          break;
        }
        shm.warp_read(probes);
        for (auto& range : r) {
          if (range.lo < range.hi) {
            const std::size_t mid = range.lo + (range.hi - range.lo) / 2;
            // The probe halves the range; which half is data-dependent but
            // both have the same length profile — walk deterministically.
            range.lo = mid + 1;
          }
        }
      }
    }
  }
  const auto after = shm.stats();
  gpusim::KernelStats delta;
  delta.shared_search.steps = after.steps - before.steps;
  delta.shared_search.requests = after.requests - before.requests;
  delta.shared_search.serialization_cycles =
      after.serialization_cycles - before.serialization_cycles;
  delta.shared_search.replays = after.replays - before.replays;
  delta.shared_search.conflicting_accesses =
      after.conflicting_accesses - before.conflicting_accesses;
  stats.shared_search += delta.shared_search;
}

/// Lock-step K-way merge: at each of E iterations every thread consumes the
/// minimum head among its segments (lowest segment index wins ties) — one
/// accounted shared read per thread per iteration, exactly like the
/// pairwise engine.  A selection among K heads costs ceil(log2 K) extra
/// compare steps, charged to warp_merge_steps.
std::vector<word> simulate_kway_merge(gpusim::SharedMemory& shm,
                                      std::span<ThreadKCtx> ctxs, u32 E,
                                      gpusim::KernelStats& stats) {
  const u32 w = shm.warp_size();
  const std::size_t t = ctxs.size();
  std::vector<std::vector<std::size_t>> cursor(t);
  for (std::size_t i = 0; i < t; ++i) {
    WCM_EXPECTS(ctxs[i].elements() == E, "thread must merge exactly E keys");
    for (const auto& [b, e] : ctxs[i].segs) {
      (void)e;
      cursor[i].push_back(b);
    }
  }
  std::vector<word> regs(t * E);
  const u32 sel_depth = ctxs.empty() || ctxs[0].segs.size() < 2
                            ? 1
                            : floor_log2(2 * ctxs[0].segs.size() - 1);

  const auto before = shm.stats();
  std::vector<gpusim::LaneRead> reads;
  for (std::size_t warp_start = 0; warp_start < t; warp_start += w) {
    const std::size_t warp_end = std::min<std::size_t>(warp_start + w, t);
    for (u32 s = 0; s < E; ++s) {
      reads.clear();
      for (std::size_t i = warp_start; i < warp_end; ++i) {
        std::size_t best = static_cast<std::size_t>(-1);
        word best_val = 0;
        for (std::size_t k = 0; k < ctxs[i].segs.size(); ++k) {
          if (cursor[i][k] < ctxs[i].segs[k].second) {
            const word v = shm.peek(cursor[i][k]);
            if (best == static_cast<std::size_t>(-1) || v < best_val) {
              best = k;
              best_val = v;
            }
          }
        }
        WCM_EXPECTS(best != static_cast<std::size_t>(-1),
                    "thread ran out of elements before step E");
        const std::size_t addr = cursor[i][best]++;
        regs[(i) * E + s] = best_val;
        reads.push_back({static_cast<u32>(i - warp_start), addr});
      }
      shm.warp_read(reads);
    }
    stats.warp_merge_steps += static_cast<std::size_t>(E) * sel_depth;
  }
  const auto after = shm.stats();
  gpusim::KernelStats delta;
  delta.shared_merge_reads.steps = after.steps - before.steps;
  delta.shared_merge_reads.requests = after.requests - before.requests;
  delta.shared_merge_reads.serialization_cycles =
      after.serialization_cycles - before.serialization_cycles;
  delta.shared_merge_reads.replays = after.replays - before.replays;
  delta.shared_merge_reads.conflicting_accesses =
      after.conflicting_accesses - before.conflicting_accesses;
  stats.shared_merge_reads += delta.shared_merge_reads;

  // Barrier, thread-contiguous write-back, barrier before unstaging reads.
  shm.barrier();
  std::vector<gpusim::LaneWrite> writes;
  for (std::size_t warp_start = 0; warp_start < t; warp_start += w) {
    const std::size_t warp_end = std::min<std::size_t>(warp_start + w, t);
    for (u32 s = 0; s < E; ++s) {
      writes.clear();
      for (std::size_t i = warp_start; i < warp_end; ++i) {
        writes.push_back({static_cast<u32>(i - warp_start),
                          ctxs[i].out_begin + s, regs[i * E + s]});
      }
      shm.warp_write(writes);
    }
  }
  shm.barrier();
  return regs;
}

/// Merge one group of K runs into `out`, one block per bE output tile.
void simulate_group_merge(const std::vector<std::span<const word>>& runs,
                          std::span<word> out, const SortConfig& cfg,
                          gpusim::SharedMemory& shm,
                          gpusim::KernelStats& stats) {
  const std::size_t tile = cfg.tile();
  const u32 E = cfg.E;
  const u32 b = cfg.b;
  const u32 w = cfg.w;
  std::size_t total = 0;
  for (const auto& r : runs) {
    total += r.size();
  }
  WCM_EXPECTS(total % tile == 0, "group size must be a multiple of bE");

  // Partitioning stage: K-way co-ranks at every tile boundary.
  std::vector<std::vector<std::size_t>> boundary;
  for (std::size_t diag = 0; diag <= total; diag += tile) {
    std::size_t steps = 0;
    boundary.push_back(kway_corank(runs, diag, steps));
    stats.binary_search_steps += steps;
    stats.global_requests += steps * runs.size();
    stats.global_transactions += steps * runs.size();
  }

  std::vector<ThreadKCtx> ctxs(b);
  std::vector<gpusim::LaneWrite> writes;
  std::vector<gpusim::LaneRead> reads;
  for (std::size_t tidx = 0; tidx + 1 < boundary.size(); ++tidx) {
    const auto& lo = boundary[tidx];
    const auto& hi = boundary[tidx + 1];

    // Block boundary between consecutive simulated tiles.
    shm.barrier();

    // Stage the tile: segment k at the shared offset of the cumulative
    // segment sizes; remember the staged copy for the thread searches.
    std::vector<word> staged;
    std::vector<std::pair<std::size_t, std::size_t>> seg_addr(runs.size());
    staged.reserve(tile);
    for (std::size_t k = 0; k < runs.size(); ++k) {
      const std::size_t begin = staged.size();
      staged.insert(staged.end(),
                    runs[k].begin() + static_cast<std::ptrdiff_t>(lo[k]),
                    runs[k].begin() + static_cast<std::ptrdiff_t>(hi[k]));
      seg_addr[k] = {begin, staged.size()};
      stats.global_transactions += (hi[k] - lo[k] + w - 1) / w + 1;
    }
    WCM_ENSURES(staged.size() == tile, "tile staging mismatch");
    shm.fill(staged);
    stats.global_requests += tile;
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      for (u32 s = 0; s < E; ++s) {
        writes.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const std::size_t addr =
              static_cast<std::size_t>(warp_start + lane) +
              static_cast<std::size_t>(s) * b;
          if (addr < tile) {
            writes.push_back({lane, addr, shm.peek(addr)});
          }
        }
        shm.warp_write(writes);
      }
    }
    // __syncthreads: the quantile searches probe other threads' staging.
    shm.barrier();

    // Per-thread quantiles within the staged tile.
    std::vector<std::span<const word>> segs(runs.size());
    for (std::size_t k = 0; k < runs.size(); ++k) {
      segs[k] = std::span<const word>(staged).subspan(
          seg_addr[k].first, seg_addr[k].second - seg_addr[k].first);
    }
    std::vector<std::vector<std::size_t>> tsplit(b + 1);
    for (u32 t = 0; t <= b; ++t) {
      std::size_t steps = 0;
      tsplit[t] = kway_corank(segs, static_cast<std::size_t>(t) * E, steps);
    }
    for (u32 t = 0; t < b; ++t) {
      ctxs[t].segs.assign(runs.size(), {});
      for (std::size_t k = 0; k < runs.size(); ++k) {
        ctxs[t].segs[k] = {seg_addr[k].first + tsplit[t][k],
                           seg_addr[k].first + tsplit[t + 1][k]};
      }
      ctxs[t].out_begin = static_cast<std::size_t>(t) * E;
    }
    account_kway_searches(shm, ctxs, w, stats);

    simulate_kway_merge(shm, ctxs, E, stats);

    // Coalesced store (conflict-free unstaging reads, as in the pairwise
    // engine).
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      for (u32 s = 0; s < E; ++s) {
        reads.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const std::size_t addr =
              static_cast<std::size_t>(warp_start + lane) +
              static_cast<std::size_t>(s) * b;
          if (addr < tile) {
            reads.push_back({lane, addr});
          }
        }
        shm.warp_read(reads);
      }
    }
    const auto merged = shm.dump(0, tile);
    std::copy(merged.begin(), merged.end(),
              out.begin() + static_cast<std::ptrdiff_t>(tidx * tile));
    stats.global_transactions += tile / w;
    stats.global_requests += tile;
    stats.blocks_launched += 1;
    stats.elements_processed += tile;
  }
}

}  // namespace

SortReport multiway_merge_sort(std::span<const word> input,
                               const SortConfig& cfg,
                               const gpusim::Device& dev, u32 ways,
                               std::vector<word>* output) {
  cfg.validate();
  WCM_CHECK_CONFIG(ways >= 2, "need at least 2 ways");
  WCM_CHECK_CONFIG(cfg.w == dev.warp_size,
                   "config warp size must match device");
  const std::size_t tile = cfg.tile();
  const std::size_t n = input.size();
  WCM_CHECK_CONFIG(n > 0 && n % tile == 0,
                   "input size must be a positive multiple of bE");

  const gpusim::Calibration cal =
      library_calibration(MergeSortLibrary::thrust);
  const gpusim::LaunchConfig launch{n / tile, cfg.b, cfg.shared_bytes()};

  SortReport report;
  report.config = cfg;
  report.device = dev;
  report.n = n;

  std::vector<word> data(input.begin(), input.end());
  std::vector<word> buffer(n);
  gpusim::SharedMemory shm(
      gpusim::SharedLayout{cfg.w, cfg.padding, cfg.layout}, tile);
  shm.attach_trace(cfg.trace_sink);

  WCM_SPAN("multiway.sort");

  // Base case: identical to the pairwise sort.
  {
    WCM_SPAN("multiway.block_sort");
    gpusim::KernelStats stats;
    for (std::size_t base = 0; base < n; base += tile) {
      shm.reset_stats();
      simulate_block_sort(shm, std::span<word>(data).subspan(base, tile), cfg,
                          stats);
      stats.shared += shm.stats();
      stats.blocks_launched += 1;
      stats.elements_processed += tile;
    }
    gpusim::RoundStats round;
    round.name = "block-sort";
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("multiway", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  std::size_t run = tile;
  u32 round_idx = 0;
  while (run < n) {
    ++round_idx;
    WCM_SPAN("multiway.merge_round");
    WCM_FAILPOINT("sort.multiway.round", simulation_error,
                  "injected mid-round invariant break");
    gpusim::KernelStats stats;
    const std::size_t group_out = run * ways;
    for (std::size_t base = 0; base < n; base += group_out) {
      std::vector<std::span<const word>> runs;
      std::size_t group_size = 0;
      for (u32 k = 0; k < ways && base + group_size < n; ++k) {
        const std::size_t len =
            std::min(run, n - base - group_size);
        runs.push_back(
            std::span<const word>(data).subspan(base + group_size, len));
        group_size += len;
      }
      if (runs.size() == 1) {
        std::copy(runs[0].begin(), runs[0].end(),
                  buffer.begin() + static_cast<std::ptrdiff_t>(base));
        stats.global_transactions += 2 * ceil_div(runs[0].size(), cfg.w);
        stats.global_requests += 2 * runs[0].size();
        continue;
      }
      shm.reset_stats();
      gpusim::KernelStats group_stats;
      simulate_group_merge(
          runs, std::span<word>(buffer).subspan(base, group_size), cfg, shm,
          group_stats);
      group_stats.shared += shm.stats();
      stats += group_stats;
    }
    data.swap(buffer);

    gpusim::RoundStats round;
    round.name = "multiway round " + std::to_string(round_idx);
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("multiway", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
    run = group_out;
  }

  WCM_CHECK_SIM(std::is_sorted(data.begin(), data.end()),
                "multiway merge sort must sort");
  if (output != nullptr) {
    *output = std::move(data);
  }
  return report;
}

gpusim::ir::KernelDesc describe_multiway(u32 w, u32 b, u32 pad, u32 ways) {
  namespace ir = gpusim::ir;
  WCM_EXPECTS(ways >= 2, "multiway merge needs at least two runs");
  // The simulated engine block-sorts its tiles first, so the description
  // composes the blocksort groups the same way describe_pairwise does.
  ir::KernelDesc d = describe_blocksort(w, b, pad);
  d.kernel = "multiway";
  const int e = d.find_symbol("E");
  const int s = d.find_symbol("s");
  const int wse = d.find_symbol("wsE");
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0, w, 0);
  const i64 last_warp = static_cast<i64>(w) * ((static_cast<i64>(b) - 1) /
                                               static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(ws)].max_form =
      ir::LinForm::constant(last_warp);
  d.symbols[static_cast<std::size_t>(ws)].step_form =
      ir::LinForm::constant(static_cast<i64>(w));
  const ir::LinForm tile_hi =
      ir::LinForm::sym(e, static_cast<i64>(b)) - ir::LinForm::constant(1);
  const bool partial_warp = b % w != 0;

  d.groups.push_back(ir::barrier_group("round entry"));
  ir::StepGroup stage = ir::affine_group(
      "stage store", ir::GroupKind::write, w,
      ir::LinForm::sym(ws) + ir::LinForm::sym(s, static_cast<i64>(b)),
      ir::LinForm::constant(1), "E steps x b/w warps x rounds");
  stage.masked = partial_warp;
  d.groups.push_back(std::move(stage));
  d.groups.push_back(ir::barrier_group("after staging"));
  // Each thread bisects for its quantile in every one of the K staged
  // runs in turn; one warp step probes within a single run's segment,
  // conservatively widened to the whole tile.
  d.groups.push_back(ir::with_region(
      ir::window_group(
          "quantile probes", ir::GroupKind::read, w,
          ir::LinForm::sym(e, static_cast<i64>(b)), ir::LinForm::constant(1),
          "<= ceil(log2(bE/K+1)) bisection iterations x K runs"),
      ir::LinForm::constant(0), tile_hi));
  // Lock-step K-way merge: a warp's E outputs per thread come from K
  // cursor ranges, one per source run.
  d.groups.push_back(ir::with_region(
      ir::window_group(
          "k-way merge reads", ir::GroupKind::read, w,
          ir::LinForm::sym(e, static_cast<i64>(w)),
          ir::LinForm::constant(static_cast<i64>(ways)),
          "E lock-step iterations, K-head selection"),
      ir::LinForm::constant(0), tile_hi));
  d.groups.push_back(ir::barrier_group("pre/post write-back barrier"));
  d.groups.back().repeat = "2 per round";
  ir::StepGroup wb = ir::affine_group(
      "merge write-back", ir::GroupKind::write, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps x rounds");
  wb.masked = partial_warp;
  d.groups.push_back(std::move(wb));
  ir::StepGroup unstage = ir::affine_group(
      "unstage load", ir::GroupKind::read, w,
      ir::LinForm::sym(ws) + ir::LinForm::sym(s, static_cast<i64>(b)),
      ir::LinForm::constant(1), "E steps x b/w warps x rounds");
  unstage.masked = partial_warp;
  d.groups.push_back(std::move(unstage));
  d.groups.push_back(ir::barrier_group("round exit"));
  return d;
}

}  // namespace wcm::sort
