#pragma once
// Host reference sorts used to validate the simulator and as the timing
// baseline in the microbenchmarks: std::sort and a bottom-up pairwise merge
// sort that mirrors the simulated algorithm's merge tree exactly.

#include <span>
#include <vector>

#include "dmm/machine.hpp"

namespace wcm::sort {

using dmm::word;

/// std::sort wrapper (returns a sorted copy).
[[nodiscard]] std::vector<word> std_sort(std::span<const word> input);

/// Bottom-up pairwise merge sort with base-case width `base`: sorts
/// base-sized chunks, then merges adjacent runs — the same merge tree the
/// simulated GPU sort executes, so intermediate states can be compared.
[[nodiscard]] std::vector<word> cpu_pairwise_merge_sort(
    std::span<const word> input, std::size_t base);

/// The state of the CPU pairwise merge sort after the base case and
/// `rounds` merge rounds (for cross-checking the simulator's intermediate
/// buffers).
[[nodiscard]] std::vector<word> cpu_pairwise_partial(
    std::span<const word> input, std::size_t base, std::size_t rounds);

}  // namespace wcm::sort
