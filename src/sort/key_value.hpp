#pragma once
// Key-value (pair) sorting, Thrust's sort_by_key: keys drive every merge
// decision exactly as in the key-only sort; values ride along.  In the
// Thrust / Modern GPU scheme the merge phase operates on keys (and merge
// *indices*) in shared memory, then values are gathered through the merge
// indices in global memory — so the bank-conflict behavior (and the
// worst-case construction's effect) is identical to the key-only sort,
// while each round moves one extra value array through global memory.
//
// The simulation reflects that split: key-phase statistics come from the
// full functional simulation; per-round value traffic is added analytically
// (documented below) because value gathers never touch the banked shared
// memory.

#include <span>
#include <vector>

#include "sort/pairwise_sort.hpp"

namespace wcm::sort {

struct PairSortResult {
  SortReport report;  ///< includes value-traffic accounting per round
  std::vector<word> keys;
  std::vector<word> values;
};

/// Sort `values` by `keys` (stable; A-priority ties).  Sizes must match and
/// satisfy the key-only sort's contract (positive multiple of bE).
///
/// Value-traffic model per merge round (and for the block sort): each
/// element's value is read through the merge index — a gather touching
/// `gather_segments` 128-byte segments per warp (values of one thread's
/// quantile are contiguous runs from two source lists, so a warp's 32
/// gathers land in few segments; we charge 4 transactions per warp, i.e.
/// 25% coalescing efficiency) — and written back fully coalesced.
[[nodiscard]] PairSortResult pairwise_merge_sort_pairs(
    std::span<const word> keys, std::span<const word> values,
    const SortConfig& cfg, const gpusim::Device& dev,
    MergeSortLibrary lib = MergeSortLibrary::thrust);

}  // namespace wcm::sort
