#include "sort/pairwise_sort.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "mergepath/partition.hpp"
#include "sort/block_merge.hpp"
#include "sort/blocksort.hpp"
#include "sort/describe.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"

namespace wcm::sort {

const char* to_string(MergeSortLibrary lib) noexcept {
  return lib == MergeSortLibrary::thrust ? "Thrust" : "ModernGPU";
}

gpusim::Calibration library_calibration(MergeSortLibrary lib) {
  gpusim::Calibration cal;
  if (lib == MergeSortLibrary::thrust) {
    cal.compute_cycles_per_merge_step = 28.0;
    cal.launch_overhead_s = 3.0e-6;
  } else {
    // Modern GPU executes measurably more instructions per merged element
    // than Thrust on the same algorithm (Karsin et al. 2018 observe the
    // Thrust > MGPU throughput ordering the paper's Fig. 4 shows).
    cal.compute_cycles_per_merge_step = 38.0;
    cal.launch_overhead_s = 4.0e-6;
  }
  return cal;
}

namespace {

/// Coalesced-transaction count of a contiguous global access of `count`
/// elements starting at global element index `base` (128-byte segments of
/// 32 4-byte lanes).
std::size_t coalesced_transactions(std::size_t base, std::size_t count,
                                   u32 w) {
  if (count == 0) {
    return 0;
  }
  const std::size_t first = base / w;
  const std::size_t last = (base + count - 1) / w;
  return last - first + 1;
}

/// Merge one pair of sorted runs (in `data`) into `out`, one simulated
/// thread block per bE-element output tile.
void simulate_pair_merge(std::span<const word> data_a,
                         std::span<const word> data_b, std::size_t a_base,
                         std::size_t b_base, std::span<word> out,
                         const SortConfig& cfg, gpusim::SharedMemory& shm,
                         gpusim::KernelStats& stats) {
  const std::size_t tile = cfg.tile();
  const u32 E = cfg.E;
  const u32 b = cfg.b;
  const u32 w = cfg.w;

  // Partitioning stage: mutual binary search in global memory for every
  // tile boundary (one dependent probe chain per thread block).
  const auto part = mergepath::partition_tiles(data_a, data_b, tile);
  stats.binary_search_steps += part.search_steps;
  stats.global_requests += 2 * part.search_steps;
  stats.global_transactions += 2 * part.search_steps;  // uncoalesced probes

  std::vector<ThreadSearchCtx> search_ctxs(b);
  std::vector<ThreadMergeCtx> merge_ctxs(b);
  std::vector<gpusim::LaneWrite> writes;
  std::vector<gpusim::LaneRead> reads;

  const std::size_t tiles = (data_a.size() + data_b.size()) / tile;
  for (std::size_t tidx = 0; tidx < tiles; ++tidx) {
    const auto [a_lo, b_lo] = part.splits[tidx];
    const auto [a_hi, b_hi] = part.splits[tidx + 1];
    const std::size_t na = a_hi - a_lo;
    const std::size_t nb = b_hi - b_lo;

    // Block boundary between consecutive simulated tiles.
    shm.barrier();

    // Stage the tile in shared memory: A segment at [0, na), B segment at
    // [na, na + nb).  Global side is coalesced; the shared-side stores go
    // through the banked memory (thread t stores elements t, t+b, ...).
    shm.fill(data_a.subspan(a_lo, na), 0);
    shm.fill(data_b.subspan(b_lo, nb), na);
    stats.global_transactions += coalesced_transactions(a_base + a_lo, na, w);
    stats.global_transactions += coalesced_transactions(b_base + b_lo, nb, w);
    stats.global_requests += tile;
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      for (u32 s = 0; s < E; ++s) {
        writes.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const std::size_t addr =
              static_cast<std::size_t>(warp_start + lane) +
              static_cast<std::size_t>(s) * b;
          if (addr < tile) {
            writes.push_back({lane, addr, shm.peek(addr)});
          }
        }
        shm.warp_write(writes);
      }
    }
    // __syncthreads: the searches probe other threads' staged elements.
    shm.barrier();

    // In-block merge-path searches: thread t owns output ranks
    // [tE, (t+1)E) of the tile.
    for (u32 t = 0; t < b; ++t) {
      search_ctxs[t] = {0, na, na, na + nb,
                        static_cast<std::size_t>(t) * E};
    }
    const auto coranks = simulate_block_search(shm, search_ctxs, stats);
    for (u32 t = 0; t < b; ++t) {
      const bool last = t + 1 == b;
      merge_ctxs[t].a_begin = coranks[t].i;
      merge_ctxs[t].a_end = last ? na : coranks[t + 1].i;
      merge_ctxs[t].b_begin = na + coranks[t].j;
      merge_ctxs[t].b_end = na + (last ? nb : coranks[t + 1].j);
      merge_ctxs[t].out_begin = static_cast<std::size_t>(t) * E;
    }

    // Lock-step merge to registers, barrier, write-back to shared in rank
    // order (this is the attacked access stream).
    simulate_block_merge(shm, merge_ctxs, E, /*write_back=*/true, stats,
                         cfg.realistic_refills);

    // Coalesced store to global: thread t reads shared elements t, t+b, ...
    // (bank-conflict free) and writes them out coalesced.
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      for (u32 s = 0; s < E; ++s) {
        reads.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const std::size_t addr =
              static_cast<std::size_t>(warp_start + lane) +
              static_cast<std::size_t>(s) * b;
          if (addr < tile) {
            reads.push_back({lane, addr});
          }
        }
        shm.warp_read(reads);
      }
    }
    const auto merged = shm.dump(0, tile);
    std::copy(merged.begin(), merged.end(),
              out.begin() + static_cast<std::ptrdiff_t>(tidx * tile));
    stats.global_transactions += tile / w;
    stats.global_requests += tile;
    stats.blocks_launched += 1;
    stats.elements_processed += tile;
  }
}

}  // namespace

SortReport recost(const SortReport& report, const gpusim::Device& dev,
                  MergeSortLibrary lib) {
  WCM_EXPECTS(report.config.w == dev.warp_size,
              "config warp size must match device");
  const gpusim::Calibration cal = library_calibration(lib);
  const gpusim::LaunchConfig launch{report.n / report.config.tile(),
                                    report.config.b,
                                    report.config.shared_bytes()};
  SortReport out = report;
  out.device = dev;
  out.total_time = {};
  for (auto& round : out.rounds) {
    const auto t = gpusim::estimate_kernel_time(dev, launch, round.kernel, cal);
    round.modeled_seconds = t.seconds;
    out.total_time += t;
  }
  return out;
}

SortReport pairwise_merge_sort(std::span<const word> input,
                               const SortConfig& cfg,
                               const gpusim::Device& dev,
                               MergeSortLibrary lib,
                               std::vector<word>* output) {
  cfg.validate();
  WCM_CHECK_CONFIG(cfg.w == dev.warp_size,
                   "config warp size must match device");
  const std::size_t tile = cfg.tile();
  const std::size_t n = input.size();
  WCM_CHECK_CONFIG(n > 0 && n % tile == 0,
                   "input size must be a positive multiple of bE");

  const gpusim::Calibration cal = library_calibration(lib);
  const gpusim::LaunchConfig launch{n / tile, cfg.b, cfg.shared_bytes()};

  SortReport report;
  report.config = cfg;
  report.device = dev;
  report.n = n;

  std::vector<word> data(input.begin(), input.end());
  std::vector<word> buffer(n);
  gpusim::SharedMemory shm(
      gpusim::SharedLayout{cfg.w, cfg.padding, cfg.layout}, tile);
  shm.attach_trace(cfg.trace_sink);

  WCM_SPAN("pairwise.sort");

  // Base case: every block sorts its own tile.
  {
    WCM_SPAN("pairwise.block_sort");
    gpusim::KernelStats stats;
    for (std::size_t base = 0; base < n; base += tile) {
      shm.reset_stats();
      simulate_block_sort(shm, std::span<word>(data).subspan(base, tile), cfg,
                          stats);
      stats.shared += shm.stats();
      stats.blocks_launched += 1;
      stats.elements_processed += tile;
    }
    gpusim::RoundStats round;
    round.name = "block-sort";
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("pairwise", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time +=
        gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  // Global pairwise merge rounds: merge adjacent runs until one run is left.
  std::size_t run = tile;
  u32 round_idx = 0;
  while (run < n) {
    ++round_idx;
    WCM_SPAN("pairwise.merge_round");
    WCM_FAILPOINT("sort.pairwise.round", simulation_error,
                  "injected mid-round invariant break");
    gpusim::KernelStats stats;
    const std::size_t out_run = 2 * run;
    for (std::size_t base = 0; base < n; base += out_run) {
      if (base + run >= n) {
        // Unpaired trailing run: copied through.
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(base),
                  data.begin() + static_cast<std::ptrdiff_t>(n),
                  buffer.begin() + static_cast<std::ptrdiff_t>(base));
        const std::size_t rem = n - base;
        stats.global_transactions += 2 * ceil_div(rem, cfg.w);
        stats.global_requests += 2 * rem;
        continue;
      }
      const std::size_t len_b = std::min(run, n - base - run);
      shm.reset_stats();
      gpusim::KernelStats pair_stats;
      simulate_pair_merge(
          std::span<const word>(data).subspan(base, run),
          std::span<const word>(data).subspan(base + run, len_b), base,
          base + run,
          std::span<word>(buffer).subspan(base, run + len_b), cfg, shm,
          pair_stats);
      pair_stats.shared += shm.stats();
      stats += pair_stats;
    }
    data.swap(buffer);

    gpusim::RoundStats round;
    round.name = "merge round " + std::to_string(round_idx);
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("pairwise", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
    run = out_run;
  }

  WCM_CHECK_SIM(std::is_sorted(data.begin(), data.end()),
                "pairwise merge sort must sort");
  if (output != nullptr) {
    *output = std::move(data);
  }
  return report;
}

SortReport pairwise_merge_sort_any(std::span<const word> input,
                                   const SortConfig& cfg,
                                   const gpusim::Device& dev,
                                   MergeSortLibrary lib,
                                   std::vector<word>* output) {
  cfg.validate();
  WCM_EXPECTS(!input.empty(), "empty input");
  const std::size_t tile = cfg.tile();
  const std::size_t padded = ceil_div(input.size(), tile) * tile;

  std::vector<word> work(input.begin(), input.end());
  work.resize(padded, std::numeric_limits<word>::max());

  std::vector<word> sorted;
  SortReport report = pairwise_merge_sort(work, cfg, dev, lib, &sorted);
  if (output != nullptr) {
    sorted.resize(input.size());  // sentinels sort to the back
    *output = std::move(sorted);
  }
  return report;
}

gpusim::ir::KernelDesc describe_pairwise(u32 w, u32 b, u32 pad) {
  namespace ir = gpusim::ir;
  ir::KernelDesc d = describe_blocksort(w, b, pad);
  d.kernel = "pairwise";
  const int e = d.find_symbol("E");
  const int s = d.find_symbol("s");
  const int wse = d.find_symbol("wsE");
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0, w, 0);
  // ws stands for warp_start itself: {0, w, ..., w*floor((b-1)/w)}.
  const i64 last_warp = static_cast<i64>(w) * ((static_cast<i64>(b) - 1) /
                                               static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(ws)].max_form =
      ir::LinForm::constant(last_warp);
  d.symbols[static_cast<std::size_t>(ws)].step_form =
      ir::LinForm::constant(static_cast<i64>(w));
  const ir::LinForm tile_hi =
      ir::LinForm::sym(e, static_cast<i64>(b)) - ir::LinForm::constant(1);
  const bool partial_warp = b % w != 0;

  // One global merge round (every round repeats the same shapes): two
  // sorted runs are staged into the b*E tile coalesced, merge-path
  // searched, lock-step merged, written back in rank order, unstaged.
  d.groups.push_back(ir::barrier_group("global round entry"));
  d.groups.push_back(ir::with_region(
      ir::fill_group("stage source runs", "1 per round"),
      ir::LinForm::constant(0), tile_hi));
  ir::StepGroup stage = ir::affine_group(
      "stage store", ir::GroupKind::write, w,
      ir::LinForm::sym(ws) + ir::LinForm::sym(s, static_cast<i64>(b)),
      ir::LinForm::constant(1), "E steps x b/w warps x rounds");
  stage.masked = partial_warp;
  d.groups.push_back(std::move(stage));
  d.groups.push_back(ir::barrier_group("after staging"));
  d.groups.push_back(ir::with_region(
      ir::window_group(
          "global search probes", ir::GroupKind::read, w,
          ir::LinForm::sym(e, static_cast<i64>(b)), ir::LinForm::constant(1),
          "<= ceil(log2(bE/2+1)) bisection iterations, A then B probes"),
      ir::LinForm::constant(0), tile_hi));
  d.groups.push_back(ir::with_region(
      ir::window_group(
          "global merge reads", ir::GroupKind::read, w,
          ir::LinForm::sym(e, static_cast<i64>(w)), ir::LinForm::constant(2),
          "E lock-step iterations x b/w warps x rounds", /*atomic=*/false,
          /*theorem_site=*/true),
      ir::LinForm::constant(0), tile_hi));
  d.groups.push_back(ir::barrier_group("pre/post write-back barrier"));
  d.groups.back().repeat = "2 per round";
  ir::StepGroup wb = ir::affine_group(
      "global merge write-back", ir::GroupKind::write, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps x rounds");
  wb.masked = partial_warp;
  d.groups.push_back(std::move(wb));
  ir::StepGroup unstage = ir::affine_group(
      "unstage load", ir::GroupKind::read, w,
      ir::LinForm::sym(ws) + ir::LinForm::sym(s, static_cast<i64>(b)),
      ir::LinForm::constant(1), "E steps x b/w warps x rounds");
  unstage.masked = partial_warp;
  d.groups.push_back(std::move(unstage));
  return d;
}

}  // namespace wcm::sort
