#pragma once
// Simulated GPU bitonic sort (Batcher's network; Peters et al. 2011 — the
// paper's refs [30, 31]).  Bitonic sort is *data-oblivious*: its
// compare-exchange schedule depends only on n, so its shared-memory access
// pattern — and hence its bank-conflict count — is identical for every
// input.  It is the natural foil for the paper's attack: immune to the
// constructed inputs, but paying Theta(n log^2 n) work where merge sort
// pays Theta(n log n).
//
// Execution model: n = 2b * 2^k keys, thread blocks of b threads own tiles
// of 2b keys (one comparator per thread per substage).  Substages with
// comparator distance < tile run fused in shared memory (load tile, run
// every in-tile substage, store); larger distances run as global
// compare-exchange passes with coalesced accesses.

#include <span>

#include "sort/report.hpp"

namespace wcm::sort {

/// Sort `input` with the simulated bitonic network.  Requires |input| to be
/// a positive multiple of 2b and a power of two overall.  `cfg.E` is
/// ignored (every thread owns 2 keys); `cfg.b`, `cfg.w`, `cfg.padding`
/// apply.  Returns the usual report (rounds are bitonic stages).
[[nodiscard]] SortReport bitonic_sort(std::span<const word> input,
                                      const SortConfig& cfg,
                                      const gpusim::Device& dev,
                                      std::vector<word>* output = nullptr);

/// Compare-exchange count of the full network: n/2 comparators per
/// substage, log2(n) * (log2(n)+1) / 2 substages.
[[nodiscard]] u64 bitonic_comparator_count(std::size_t n);

}  // namespace wcm::sort
