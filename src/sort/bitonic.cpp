#include "sort/bitonic.hpp"

#include <algorithm>

#include "gpusim/shared_memory.hpp"
#include "sort/describe.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"

namespace wcm::sort {

u64 bitonic_comparator_count(std::size_t n) {
  if (n < 2) {
    return 0;
  }
  const u64 m = log2_exact(n);
  return static_cast<u64>(n / 2) * (m * (m + 1) / 2);
}

namespace {

/// Low element index of comparator `c` at the given stride (power of two).
std::size_t comparator_low(std::size_t c, std::size_t stride) {
  return ((c / stride) * (2 * stride)) | (c & (stride - 1));
}

/// Ascending iff bit `size` of the low element's global index is clear.
bool ascending(std::size_t global_low, std::size_t size) {
  return (global_low & size) == 0;
}

/// One global compare-exchange pass (stride >= tile): every element is read
/// and written once, coalesced; no shared memory.
void global_pass(std::vector<word>& data, std::size_t size,
                 std::size_t stride, u32 w, gpusim::KernelStats& stats) {
  const std::size_t n = data.size();
  for (std::size_t c = 0; c < n / 2; ++c) {
    const std::size_t l = comparator_low(c, stride);
    const std::size_t h = l + stride;
    const bool asc = ascending(l, size);
    if (asc ? data[l] > data[h] : data[l] < data[h]) {
      std::swap(data[l], data[h]);
    }
  }
  stats.global_transactions += 2 * (n / w);  // read all, write all
  stats.global_requests += 2 * n;
  stats.warp_merge_steps += (n / 2) / w;
}

/// Run every substage of `substages` (pairs of (size, stride), stride <
/// tile) for one tile staged in shared memory, with full warp-synchronous
/// accounting.
void shared_tile_pass(
    gpusim::SharedMemory& shm, std::span<word> tile_data,
    std::size_t tile_base,
    const std::vector<std::pair<std::size_t, std::size_t>>& substages,
    u32 b, u32 w, gpusim::KernelStats& stats) {
  const std::size_t tile = tile_data.size();

  // Block boundary: one SharedMemory hosts many simulated tiles in
  // sequence, so the kernel launch boundary is a barrier in the trace.
  shm.barrier();

  // Coalesced load, then warp-synchronous staging stores (thread t stores
  // elements t and t + b; conflict-free).
  stats.global_transactions += tile / w;
  stats.global_requests += tile;
  std::vector<gpusim::LaneWrite> writes;
  std::vector<gpusim::LaneRead> reads;
  for (u32 warp_start = 0; warp_start < b; warp_start += w) {
    for (u32 s = 0; s < 2; ++s) {
      writes.clear();
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        const std::size_t idx =
            static_cast<std::size_t>(warp_start + lane) +
            static_cast<std::size_t>(s) * b;
        writes.push_back({lane, idx, tile_data[idx]});
      }
      shm.warp_write(writes);
    }
  }
  // __syncthreads: the comparators read other threads' staged elements.
  shm.barrier();

  for (const auto& [size, stride] : substages) {
    // Thread t owns comparator t of the tile (tile/2 == b comparators).
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      // Warp-synchronous: read lows, read highs, write lows, write highs.
      reads.clear();
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        reads.push_back(
            {lane, comparator_low(warp_start + lane, stride)});
      }
      shm.warp_read(reads);
      reads.clear();
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        reads.push_back(
            {lane, comparator_low(warp_start + lane, stride) + stride});
      }
      shm.warp_read(reads);

      writes.clear();
      std::vector<gpusim::LaneWrite> writes_high;
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        const std::size_t l = comparator_low(warp_start + lane, stride);
        const std::size_t h = l + stride;
        word lo = shm.peek(l);
        word hi = shm.peek(h);
        if (ascending(tile_base + l, size) ? lo > hi : lo < hi) {
          std::swap(lo, hi);
        }
        writes.push_back({lane, l, lo});
        writes_high.push_back({lane, h, hi});
      }
      shm.warp_write(writes);
      shm.warp_write(writes_high);
    }
    stats.warp_merge_steps += b / w;
    // __syncthreads between substages: the comparator partition changes,
    // so the next substage (or the unstaging loads) reads other threads'
    // writes.
    shm.barrier();
  }

  // Warp-synchronous unstaging loads, then the coalesced store.
  for (u32 warp_start = 0; warp_start < b; warp_start += w) {
    for (u32 s = 0; s < 2; ++s) {
      reads.clear();
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        reads.push_back({lane, static_cast<std::size_t>(warp_start + lane) +
                                   static_cast<std::size_t>(s) * b});
      }
      shm.warp_read(reads);
    }
  }
  const auto result = shm.dump(0, tile);
  std::copy(result.begin(), result.end(), tile_data.begin());
  stats.global_transactions += tile / w;
  stats.global_requests += tile;
}

}  // namespace

SortReport bitonic_sort(std::span<const word> input, const SortConfig& cfg,
                        const gpusim::Device& dev, std::vector<word>* output) {
  WCM_EXPECTS(is_pow2(cfg.b) && cfg.b >= cfg.w,
              "block size must be a power of two >= warp size");
  WCM_EXPECTS(cfg.w == dev.warp_size, "config warp size must match device");
  const std::size_t tile = 2 * static_cast<std::size_t>(cfg.b);
  const std::size_t n = input.size();
  WCM_EXPECTS(n >= tile && is_pow2(n), "n must be a power of two >= 2b");

  const std::size_t pad_words = tile / cfg.w * cfg.padding;
  const gpusim::LaunchConfig launch{n / tile, cfg.b, (tile + pad_words) * 4};
  const gpusim::Calibration cal =
      library_calibration(MergeSortLibrary::thrust);

  SortReport report;
  report.config = cfg;
  report.device = dev;
  report.n = n;

  std::vector<word> data(input.begin(), input.end());
  gpusim::SharedMemory shm(
      gpusim::SharedLayout{cfg.w, cfg.padding, cfg.layout}, tile);
  shm.attach_trace(cfg.trace_sink);

  const auto run_shared_tail =
      [&](std::size_t size, std::size_t first_stride,
          gpusim::KernelStats& stats) {
        std::vector<std::pair<std::size_t, std::size_t>> substages;
        for (std::size_t stride = first_stride; stride > 0; stride >>= 1) {
          substages.emplace_back(size, stride);
        }
        for (std::size_t base = 0; base < n; base += tile) {
          shm.reset_stats();
          shared_tile_pass(shm, std::span<word>(data).subspan(base, tile),
                           base, substages, cfg.b, cfg.w, stats);
          stats.shared += shm.stats();
          stats.blocks_launched += 1;
        }
        stats.elements_processed += n;
      };

  WCM_SPAN("bitonic.sort");

  // Fused opening pass: every stage with size <= tile runs in shared.
  {
    WCM_SPAN("bitonic.opening_pass");
    gpusim::KernelStats stats;
    std::vector<std::pair<std::size_t, std::size_t>> substages;
    for (std::size_t size = 2; size <= tile; size <<= 1) {
      for (std::size_t stride = size / 2; stride > 0; stride >>= 1) {
        substages.emplace_back(size, stride);
      }
    }
    for (std::size_t base = 0; base < n; base += tile) {
      shm.reset_stats();
      shared_tile_pass(shm, std::span<word>(data).subspan(base, tile), base,
                       substages, cfg.b, cfg.w, stats);
      stats.shared += shm.stats();
      stats.blocks_launched += 1;
    }
    stats.elements_processed += n;

    gpusim::RoundStats round;
    round.name = "bitonic stages <= tile";
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("bitonic", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  // Remaining stages: global passes down to the tile boundary, then one
  // fused shared tail per stage.
  for (std::size_t size = 2 * tile; size <= n; size <<= 1) {
    WCM_SPAN("bitonic.stage");
    gpusim::KernelStats stats;
    for (std::size_t stride = size / 2; stride >= tile; stride >>= 1) {
      global_pass(data, size, stride, cfg.w, stats);
      stats.blocks_launched += n / tile;
    }
    run_shared_tail(size, tile / 2, stats);

    gpusim::RoundStats round;
    round.name = "bitonic stage " + std::to_string(log2_exact(size));
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("bitonic", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  WCM_ENSURES(std::is_sorted(data.begin(), data.end()),
              "bitonic sort must sort");
  if (output != nullptr) {
    *output = std::move(data);
  }
  return report;
}

gpusim::ir::KernelDesc describe_bitonic(u32 w, u32 b, u32 pad) {
  namespace ir = gpusim::ir;
  WCM_EXPECTS(w > 0 && b >= w && is_pow2(b),
              "block size must be a power of two no smaller than the warp");
  ir::KernelDesc d;
  d.kernel = "bitonic";
  d.w = w;
  d.b = b;
  d.pad = pad;
  const i64 tile = 2 * static_cast<i64>(b);
  d.words = ir::LinForm::constant(tile);
  const bool partial_warp = b % w != 0;
  // Bitonic runs at E = 2 over a tile of 2b words.  When w divides b every
  // warp-uniform base offset (warp_start, the staging half, comparator
  // block bases) is a multiple of w, so one warp-shift symbol absorbs them
  // all; otherwise only warp_start is, and the staging half offset needs
  // its own enumerable parameter.
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0, w, 0);
  const i64 last_warp = static_cast<i64>(w) * ((static_cast<i64>(b) - 1) /
                                               static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(ws)].max_form = ir::LinForm::constant(
      partial_warp ? last_warp : tile - static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(ws)].step_form =
      ir::LinForm::constant(static_cast<i64>(w));
  // Sub-warp comparator substages (sigma < w) split a warp into lane
  // blocks spanning 2w words, so their warp-uniform base steps by 2w up
  // to tile - 2w — half the reach of the generic shift.  The conflict
  // prover pins every shift to zero, but the def-use footprint analysis
  // reads the declared extent, so the tighter value set matters.
  const int ws2 = d.add_symbol("ws2", ir::SymRole::warp_shift, 0, 0, w, 0);
  const i64 two_w = 2 * static_cast<i64>(w);
  d.symbols[static_cast<std::size_t>(ws2)].max_form =
      ir::LinForm::constant(two_w * ((tile - two_w) / two_w));
  d.symbols[static_cast<std::size_t>(ws2)].step_form =
      ir::LinForm::constant(two_w);
  const int half =
      partial_warp
          ? d.add_symbol("half", ir::SymRole::parameter, 0, 1)
          : -1;
  const ir::LinForm stage_base =
      partial_warp ? ir::LinForm::sym(ws) +
                         ir::LinForm::sym(half, static_cast<i64>(b))
                   : ir::LinForm::sym(ws);

  d.groups.push_back(ir::barrier_group("block entry"));
  ir::StepGroup stage = ir::affine_group(
      "stage store", ir::GroupKind::write, w, stage_base,
      ir::LinForm::constant(1), "2 steps x b/w warps");
  stage.masked = partial_warp;
  d.groups.push_back(std::move(stage));
  d.groups.push_back(ir::barrier_group("after staging"));

  // Comparator substages, largest stride first.  Thread c handles the pair
  // (low, low + sigma) with low = (c/sigma)*2*sigma + c%sigma.  For
  // sigma >= w (and sigma a multiple of w) a warp's lows are consecutive
  // and the +sigma offset is a multiple of w (absorbed); for 2*sigma
  // dividing w the warp splits into w/sigma lane blocks 2*sigma apart —
  // the classic power-of-two conflict the padded layout is there to fix.
  // Any other alignment (non-power-of-two w) falls back to a window: a
  // warp's lows (or highs) form at most (w-1)/sigma + 2 contiguous runs of
  // w addresses total inside the tile.
  for (u32 sigma = b; sigma >= 1; sigma /= 2) {
    const std::string tag = " (stride " + std::to_string(sigma) + ")";
    if (sigma >= w && sigma % w == 0) {
      for (const auto kind : {ir::GroupKind::read, ir::GroupKind::write}) {
        d.groups.push_back(ir::affine_group(
            (kind == ir::GroupKind::read ? "comparator load" + tag
                                         : "comparator store" + tag),
            kind, w, ir::LinForm::sym(ws), ir::LinForm::constant(1),
            "low then high, per substage pass"));
        d.groups.back().masked = partial_warp;
      }
    } else if (sigma < w && w % (2 * sigma) == 0) {
      for (const auto kind : {ir::GroupKind::read, ir::GroupKind::write}) {
        for (const i64 off : {i64{0}, static_cast<i64>(sigma)}) {
          ir::StepGroup g;
          g.name = std::string(kind == ir::GroupKind::read ? "comparator load"
                                                           : "comparator store") +
                   (off == 0 ? " low" : " high") + tag;
          g.kind = kind;
          g.repeat = "per substage pass";
          g.pattern.kind = ir::PatternKind::pieces;
          for (u32 m = 0; m < w / sigma; ++m) {
            ir::LanePiece piece;
            piece.lane_lo = m * sigma;
            piece.lane_hi = (m + 1) * sigma - 1;
            piece.base = ir::LinForm::sym(ws2) +
                         ir::LinForm::constant(
                             static_cast<i64>(2 * sigma * m) + off);
            piece.stride = ir::LinForm::constant(1);
            g.pattern.pieces.push_back(piece);
          }
          d.groups.push_back(g);
        }
      }
    } else {
      const i64 runs = (static_cast<i64>(w) - 1) / static_cast<i64>(sigma) + 2;
      for (const auto kind : {ir::GroupKind::read, ir::GroupKind::write}) {
        for (const char* side : {"low", "high"}) {
          d.groups.push_back(ir::with_region(
              ir::window_group(
                  std::string(kind == ir::GroupKind::read
                                  ? "comparator load "
                                  : "comparator store ") +
                      side + tag,
                  kind, w, ir::LinForm::constant(static_cast<i64>(w)),
                  ir::LinForm::constant(runs), "per substage pass"),
              ir::LinForm::constant(0), ir::LinForm::constant(tile - 1)));
          d.groups.back().masked = partial_warp;
        }
      }
    }
    d.groups.push_back(ir::barrier_group("substage barrier" + tag));
  }

  ir::StepGroup unstage = ir::affine_group(
      "unstage load", ir::GroupKind::read, w, stage_base,
      ir::LinForm::constant(1), "2 steps x b/w warps");
  unstage.masked = partial_warp;
  d.groups.push_back(std::move(unstage));
  return d;
}

}  // namespace wcm::sort
