#include "sort/scan.hpp"

#include <algorithm>
#include <numeric>

#include "gpusim/shared_memory.hpp"
#include "sort/describe.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"

namespace wcm::sort {

SortReport block_scan(std::span<const word> input, const SortConfig& cfg,
                      const gpusim::Device& dev, std::vector<word>* output) {
  WCM_EXPECTS(cfg.E >= 1, "E must be positive");
  WCM_EXPECTS(is_pow2(cfg.b) && cfg.b >= cfg.w,
              "block size must be a power of two >= warp size");
  WCM_EXPECTS(cfg.w == dev.warp_size, "config warp size must match device");
  const std::size_t tile = cfg.tile();
  const std::size_t n = input.size();
  WCM_EXPECTS(n > 0 && n % tile == 0,
              "input size must be a positive multiple of bE");

  const u32 E = cfg.E;
  const u32 b = cfg.b;
  const u32 w = cfg.w;
  // Shared layout: the tile at [0, tile), per-thread totals at
  // [tile, tile + b).
  const std::size_t shared_words = tile + b;
  const std::size_t pad_words = shared_words / w * cfg.padding;
  const gpusim::LaunchConfig launch{n / tile, b, (shared_words + pad_words) * 4};
  const gpusim::Calibration cal =
      library_calibration(MergeSortLibrary::thrust);

  SortReport report;
  report.config = cfg;
  report.device = dev;
  report.n = n;

  std::vector<word> data(input.begin(), input.end());
  gpusim::SharedMemory shm(
      gpusim::SharedLayout{w, cfg.padding, cfg.layout}, shared_words);
  shm.attach_trace(cfg.trace_sink);
  gpusim::KernelStats stats;
  std::vector<gpusim::LaneRead> reads;
  std::vector<gpusim::LaneWrite> writes;

  WCM_SPAN("scan.block_scan");

  word carry = 0;
  for (std::size_t base = 0; base < n; base += tile) {
    WCM_SPAN("scan.tile");
    // Block boundary: one SharedMemory hosts many simulated blocks in
    // sequence, so each tile starts from a synchronized state.
    shm.barrier();
    shm.reset_stats();
    shm.fill(std::span<const word>(data).subspan(base, tile));
    stats.global_transactions += tile / w;
    stats.global_requests += tile;

    // Phase 1: every thread serially scans its E consecutive elements —
    // the Dotsenko access pattern: at step s, lane t touches bank
    // (tE + s) mod w.  Read-modify-write in place.
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      for (u32 s = 0; s < E; ++s) {
        reads.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          reads.push_back(
              {lane,
               static_cast<std::size_t>(warp_start + lane) * E + s});
        }
        shm.warp_read(reads);
        writes.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const std::size_t addr =
              static_cast<std::size_t>(warp_start + lane) * E + s;
          const word prev = s == 0 ? 0 : shm.peek(addr - 1);
          writes.push_back({lane, addr, shm.peek(addr) + prev});
        }
        shm.warp_write(writes);
      }
    }
    // Publish per-thread totals.
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      writes.clear();
      for (u32 lane = 0; lane < w; ++lane) {
        const u32 t = warp_start + lane;
        writes.push_back(
            {lane, tile + t,
             shm.peek(static_cast<std::size_t>(t) * E + E - 1)});
      }
      shm.warp_write(writes);
    }
    // __syncthreads: phase 2 reads totals other threads published.
    shm.barrier();

    // Phase 2: Hillis–Steele scan over the b totals.
    for (u32 dist = 1; dist < b; dist <<= 1) {
      std::vector<word> updated(b);
      for (u32 warp_start = 0; warp_start < b; warp_start += w) {
        reads.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const u32 t = warp_start + lane;
          reads.push_back({lane, tile + (t >= dist ? t - dist : t)});
        }
        shm.warp_read(reads);
      }
      // __syncthreads: every gather must finish before any total is
      // overwritten (the textbook double-buffer sync of Hillis-Steele).
      shm.barrier();
      for (u32 t = 0; t < b; ++t) {
        updated[t] = shm.peek(tile + t) +
                     (t >= dist ? shm.peek(tile + t - dist) : 0);
      }
      for (u32 warp_start = 0; warp_start < b; warp_start += w) {
        writes.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const u32 t = warp_start + lane;
          writes.push_back({lane, tile + t, updated[t]});
        }
        shm.warp_write(writes);
      }
      // __syncthreads: the next round's gathers read these stores.
      shm.barrier();
    }

    // Phase 3: add the exclusive per-thread prefix back (same banked
    // pattern as phase 1).
    for (u32 warp_start = 0; warp_start < b; warp_start += w) {
      for (u32 s = 0; s < E; ++s) {
        reads.clear();
        writes.clear();
        for (u32 lane = 0; lane < w; ++lane) {
          const u32 t = warp_start + lane;
          const std::size_t addr = static_cast<std::size_t>(t) * E + s;
          reads.push_back({lane, addr});
          const word prefix = t == 0 ? 0 : shm.peek(tile + t - 1);
          writes.push_back({lane, addr, shm.peek(addr) + prefix});
        }
        shm.warp_read(reads);
        shm.warp_write(writes);
      }
    }

    const auto scanned = shm.dump(0, tile);
    for (std::size_t i = 0; i < tile; ++i) {
      data[base + i] = scanned[i] + carry;
    }
    carry = data[base + tile - 1];
    stats.global_transactions += tile / w;
    stats.global_requests += tile;
    stats.blocks_launched += 1;
    stats.elements_processed += tile;
    stats.shared += shm.stats();
    stats.warp_merge_steps += static_cast<std::size_t>(b / w) * 2 * E;
  }

  gpusim::RoundStats round;
  round.name = "block-scan";
  round.kernel = stats;
  round.modeled_seconds =
      gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
  gpusim::record_round_telemetry("scan", round.name, cfg.E, cfg.padding,
                                 stats);
  report.totals = stats;
  report.total_time = gpusim::estimate_kernel_time(dev, launch, stats, cal);
  report.rounds.push_back(std::move(round));

  // Host check: inclusive prefix sum.
  if (output != nullptr) {
    *output = std::move(data);
  }
  return report;
}

gpusim::ir::KernelDesc describe_block_scan(u32 w, u32 b, u32 pad) {
  namespace ir = gpusim::ir;
  WCM_EXPECTS(w > 0 && is_pow2(w) && b >= w && b % w == 0 && is_pow2(b),
              "block shape must be power-of-two multiples of the warp");
  ir::KernelDesc d;
  d.kernel = "scan";
  d.w = w;
  d.b = b;
  d.pad = pad;
  const int e = d.add_symbol("E", ir::SymRole::parameter, 3,
                             static_cast<i64>(w) - 1, 2, 1);
  const int s = d.add_symbol("s", ir::SymRole::parameter, 0,
                             static_cast<i64>(w) - 2, 1, 0, e);
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0, w, 0);
  const int wse = d.add_symbol("wsE", ir::SymRole::warp_shift, 0, 0, w, 0);
  const ir::LinForm tile = ir::LinForm::sym(e, static_cast<i64>(b));
  d.symbols[static_cast<std::size_t>(ws)].max_form =
      ir::LinForm::constant(static_cast<i64>(b) - static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(ws)].step_form =
      ir::LinForm::constant(static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(wse)].max_form =
      ir::LinForm::sym(e, static_cast<i64>(b) - static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(wse)].step_form =
      ir::LinForm::sym(e, static_cast<i64>(w));
  // Tile keys at [0, bE), the b per-thread totals at [bE, bE + b).
  d.words = tile + ir::LinForm::constant(static_cast<i64>(b));

  d.groups.push_back(ir::barrier_group("block entry"));
  d.groups.push_back(ir::with_region(
      ir::fill_group("tile load", "1 per tile"), ir::LinForm::constant(0),
      tile - ir::LinForm::constant(1)));
  // Phase 1: thread t serially accumulates its E consecutive elements —
  // the Dotsenko stride-E read-modify-write pattern.
  d.groups.push_back(ir::affine_group(
      "phase1 serial-scan load", ir::GroupKind::read, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps"));
  d.groups.push_back(ir::affine_group(
      "phase1 serial-scan store", ir::GroupKind::write, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps"));
  d.groups.push_back(ir::affine_group(
      "totals publish", ir::GroupKind::write, w,
      tile + ir::LinForm::sym(ws), ir::LinForm::constant(1), "b/w warps"));
  d.groups.push_back(ir::barrier_group("before Hillis-Steele rounds"));

  // Phase 2: Hillis-Steele over the b per-thread totals at [bE, bE + b):
  // thread t gathers totals[t - dist] (or its own when t < dist), then
  // scatters after a barrier.
  for (u32 dist = 1; dist < b; dist *= 2) {
    const std::string tag = " (dist " + std::to_string(dist) + ")";
    if (dist < w) {
      // First warp: lanes below dist keep their own total, the rest reach
      // back dist slots — two stride-1 pieces of one block-aligned region.
      ir::StepGroup g;
      g.name = "totals gather" + tag + " (first warp)";
      g.kind = ir::GroupKind::read;
      g.repeat = "1 per round";
      g.pattern.kind = ir::PatternKind::pieces;
      ir::LanePiece keep;
      keep.lane_lo = 0;
      keep.lane_hi = dist - 1;
      keep.base = tile;
      keep.stride = ir::LinForm::constant(1);
      g.pattern.pieces.push_back(keep);
      ir::LanePiece reach;
      reach.lane_lo = dist;
      reach.lane_hi = w - 1;
      reach.base = tile;  // addr(lane) = bE + (lane - dist)
      reach.stride = ir::LinForm::constant(1);
      g.pattern.pieces.push_back(reach);
      d.groups.push_back(g);
      if (b > w) {
        d.groups.push_back(ir::affine_group(
            "totals gather" + tag + " (later warps)", ir::GroupKind::read, w,
            tile + ir::LinForm::sym(ws) +
                ir::LinForm::constant(-static_cast<i64>(dist)),
            ir::LinForm::constant(1), "b/w - 1 warps per round"));
      }
    } else {
      // dist is a multiple of w: the -dist reach-back (or none, below
      // dist) shifts whole warps uniformly and is absorbed by ws.
      d.groups.push_back(ir::affine_group(
          "totals gather" + tag, ir::GroupKind::read, w,
          tile + ir::LinForm::sym(ws), ir::LinForm::constant(1),
          "b/w warps per round"));
    }
    d.groups.push_back(ir::barrier_group("gather/scatter barrier" + tag));
    d.groups.push_back(ir::affine_group(
        "totals scatter" + tag, ir::GroupKind::write, w,
        tile + ir::LinForm::sym(ws), ir::LinForm::constant(1),
        "b/w warps per round"));
    d.groups.push_back(ir::barrier_group("round barrier" + tag));
  }

  // Phase 3: each thread adds its exclusive offset back into its E
  // elements — the phase-1 pattern again.
  d.groups.push_back(ir::affine_group(
      "phase3 offset load", ir::GroupKind::read, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps"));
  d.groups.push_back(ir::affine_group(
      "phase3 offset store", ir::GroupKind::write, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps"));
  return d;
}

}  // namespace wcm::sort
