#pragma once
// Symbolic access-pattern lifters: each simulated kernel describes its
// shared-memory addressing once, as a gpusim::ir::KernelDesc, instead of
// only exhibiting it through recorded traces.  The describers live next to
// the kernels they mirror (blocksort.cpp, block_merge.cpp, ...), so a
// change to a kernel's addressing and to its declared pattern is one
// review; the symbolic prover (analyze/symbolic) and the wcm_prove_ci gate
// hold the two accountable to each other.
//
// Conventions shared by every describer:
//  * w, b, pad are concrete (the machine/block shape); E is the symbolic
//    parameter "E" with a default declared range [3, w-1], odd — callers
//    (the prover CLI) re-range it before analysis.
//  * "s" is the inner lock-step iteration, range [0, E) via upper_sym.
//  * warp-shift symbols ("ws", "wsE", ...) stand for per-warp base offsets
//    that are ≡ 0 (mod w) and uniform across the warp's lanes.
//  * b must be a positive multiple of w (every simulated launch satisfies
//    this; the describers contract-check it).

#include "gpusim/access_ir.hpp"
#include "util/math.hpp"

namespace wcm::sort {

/// Register-sort phase plus the log2(b) intra-block merge rounds.
[[nodiscard]] gpusim::ir::KernelDesc describe_blocksort(u32 w, u32 b,
                                                        u32 pad);

/// The intra-block pairwise merge rounds alone (search probes, lock-step
/// merge reads — the Theorem 3/9 site — and rank-order write-back).
[[nodiscard]] gpusim::ir::KernelDesc describe_block_merge(u32 w, u32 b,
                                                          u32 pad);

/// Full pairwise engine: blocksort base case plus one global merge round
/// over a staged tile (the rounds repeat the same access shapes).
[[nodiscard]] gpusim::ir::KernelDesc describe_pairwise(u32 w, u32 b, u32 pad);

/// K-way engine: staging, per-run quantile probes, lock-step K-way merge
/// reads, rank-order write-back, unstaging.
[[nodiscard]] gpusim::ir::KernelDesc describe_multiway(u32 w, u32 b, u32 pad,
                                                       u32 ways);

/// Bitonic engine (E = 2, tile = 2b): staging plus every comparator
/// stride's low/high loads and stores.
[[nodiscard]] gpusim::ir::KernelDesc describe_bitonic(u32 w, u32 b, u32 pad);

/// Radix engine: histogram zeroing and the atomic bin-update rounds.
[[nodiscard]] gpusim::ir::KernelDesc describe_radix(u32 w, u32 b, u32 pad,
                                                    u32 digit_bits);

/// Block-wide prefix scan: Dotsenko serial phases plus the Hillis-Steele
/// rounds over the per-thread totals.
[[nodiscard]] gpusim::ir::KernelDesc describe_block_scan(u32 w, u32 b,
                                                         u32 pad);

/// Shearsort mesh engine: stride-1 staging/row/unstage steps plus the
/// stride-w column traversal — the certification mode's showcase (w-way
/// conflict on the linear layout, conflict-free under pad or permutation).
[[nodiscard]] gpusim::ir::KernelDesc describe_shearsort(u32 w, u32 b,
                                                        u32 pad);

}  // namespace wcm::sort
