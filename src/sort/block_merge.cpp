#include "sort/block_merge.hpp"

#include <algorithm>

#include "sort/describe.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"

namespace wcm::sort {

namespace {

/// Accumulate the stats delta of a phase into a sub-counter.
dmm::MachineStats delta(const dmm::MachineStats& after,
                        const dmm::MachineStats& before) {
  dmm::MachineStats d;
  d.steps = after.steps - before.steps;
  d.requests = after.requests - before.requests;
  d.serialization_cycles =
      after.serialization_cycles - before.serialization_cycles;
  d.replays = after.replays - before.replays;
  d.conflicting_accesses =
      after.conflicting_accesses - before.conflicting_accesses;
  d.max_bank_degree = std::max(d.max_bank_degree, after.max_bank_degree);
  return d;
}

}  // namespace

std::vector<mergepath::CoRank> simulate_block_search(
    gpusim::SharedMemory& shm, std::span<const ThreadSearchCtx> ctxs,
    gpusim::KernelStats& stats) {
  WCM_SPAN("block_merge.search");
  const u32 w = shm.warp_size();
  const std::size_t t = ctxs.size();
  std::vector<mergepath::CoRank> result(t);

  // Per-thread search state, advanced one iteration at a time so probes can
  // be replayed warp-synchronously across lanes.
  struct SearchState {
    std::size_t lo = 0;
    std::size_t hi = 0;
    bool done = false;
  };
  std::vector<SearchState> st(t);
  for (std::size_t i = 0; i < t; ++i) {
    const ThreadSearchCtx& c = ctxs[i];
    WCM_EXPECTS(c.a_begin <= c.a_end && c.a_end <= shm.words(),
                "A range invalid");
    WCM_EXPECTS(c.b_begin <= c.b_end && c.b_end <= shm.words(),
                "B range invalid");
    const std::size_t na = c.a_end - c.a_begin;
    const std::size_t nb = c.b_end - c.b_begin;
    WCM_EXPECTS(c.diag <= na + nb, "diagonal beyond both lists");
    st[i].lo = c.diag > nb ? c.diag - nb : 0;
    st[i].hi = std::min(c.diag, na);
    st[i].done = st[i].lo >= st[i].hi;
    if (st[i].done) {
      result[i] = {st[i].lo, c.diag - st[i].lo};
    }
  }

  const auto shared_before = shm.stats();

  std::vector<gpusim::LaneRead> probes_a;
  std::vector<gpusim::LaneRead> probes_b;
  std::vector<std::pair<std::size_t, std::size_t>> mids;  // (thread, mid)
  probes_a.reserve(w);
  probes_b.reserve(w);
  mids.reserve(w);

  for (std::size_t warp_start = 0; warp_start < t; warp_start += w) {
    const std::size_t warp_end = std::min<std::size_t>(warp_start + w, t);
    for (;;) {
      probes_a.clear();
      probes_b.clear();
      mids.clear();
      // Decide this iteration's probe addresses for every active lane.
      for (std::size_t i = warp_start; i < warp_end; ++i) {
        if (st[i].done) {
          continue;
        }
        const std::size_t mid = st[i].lo + (st[i].hi - st[i].lo) / 2;
        const std::size_t j = ctxs[i].diag - mid;
        probes_a.push_back(
            {static_cast<u32>(i - warp_start), ctxs[i].a_begin + mid});
        probes_b.push_back(
            {static_cast<u32>(i - warp_start), ctxs[i].b_begin + j - 1});
        mids.emplace_back(i, mid);
      }
      if (probes_a.empty()) {
        break;
      }
      // Two warp-wide loads per iteration: the A probe then the B probe.
      shm.warp_read(probes_a);
      shm.warp_read(probes_b);
      for (const auto& [i, mid] : mids) {
        const std::size_t j = ctxs[i].diag - mid;
        const word av = shm.peek(ctxs[i].a_begin + mid);
        const word bv = shm.peek(ctxs[i].b_begin + j - 1);
        if (av <= bv) {  // A-priority, matches mergepath::merge_path
          st[i].lo = mid + 1;
        } else {
          st[i].hi = mid;
        }
        if (st[i].lo >= st[i].hi) {
          st[i].done = true;
          result[i] = {st[i].lo, ctxs[i].diag - st[i].lo};
        }
      }
    }
  }

  stats.shared_search += delta(shm.stats(), shared_before);
  return result;
}

std::vector<word> simulate_block_merge(gpusim::SharedMemory& shm,
                                       std::span<const ThreadMergeCtx> ctxs,
                                       u32 E, bool write_back,
                                       gpusim::KernelStats& stats,
                                       bool realistic_refills) {
  WCM_SPAN("block_merge.merge");
  for (const ThreadMergeCtx& c : ctxs) {
    WCM_EXPECTS(c.elements() == E, "every thread must merge exactly E keys");
    WCM_EXPECTS(c.a_end <= shm.words() && c.b_end <= shm.words(),
                "segment outside shared memory");
  }

  const u32 w = shm.warp_size();
  const std::size_t t = ctxs.size();

  // Per-thread cursors and register file.
  std::vector<std::size_t> ai(t), bi(t);
  for (std::size_t i = 0; i < t; ++i) {
    ai[i] = ctxs[i].a_begin;
    bi[i] = ctxs[i].b_begin;
  }
  std::vector<word> regs(t * E);

  const auto before_merge = shm.stats();

  std::vector<gpusim::LaneRead> reads;
  reads.reserve(w);
  for (std::size_t warp_start = 0; warp_start < t; warp_start += w) {
    const std::size_t warp_end = std::min<std::size_t>(warp_start + w, t);
    if (realistic_refills) {
      // Initial head loads: every thread fetches its A head, then its B
      // head, into registers (inactive lanes for empty segments).
      for (const bool side_a : {true, false}) {
        reads.clear();
        for (std::size_t i = warp_start; i < warp_end; ++i) {
          const std::size_t cur = side_a ? ai[i] : bi[i];
          const std::size_t end = side_a ? ctxs[i].a_end : ctxs[i].b_end;
          if (cur < end) {
            reads.push_back({static_cast<u32>(i - warp_start), cur});
          }
        }
        if (!reads.empty()) {
          shm.warp_read(reads);
        }
      }
    }
    for (u32 s = 0; s < E; ++s) {
      reads.clear();
      for (std::size_t i = warp_start; i < warp_end; ++i) {
        // Decide which side this thread consumes at iteration s.
        const bool a_avail = ai[i] < ctxs[i].a_end;
        const bool b_avail = bi[i] < ctxs[i].b_end;
        bool take_a;
        if (a_avail && b_avail) {
          take_a = shm.peek(ai[i]) <= shm.peek(bi[i]);  // A-priority
        } else {
          WCM_EXPECTS(a_avail || b_avail,
                      "thread ran out of elements before step E");
          take_a = a_avail;
        }
        const std::size_t addr = take_a ? ai[i]++ : bi[i]++;
        regs[i * E + s] = shm.peek(addr);
        if (realistic_refills) {
          // The consumed value was already in registers; the iteration's
          // shared access is the *refill* of the consumed side's next
          // element (none when that segment is exhausted).
          const std::size_t next = take_a ? ai[i] : bi[i];
          const std::size_t end = take_a ? ctxs[i].a_end : ctxs[i].b_end;
          if (next < end) {
            reads.push_back({static_cast<u32>(i - warp_start), next});
          }
        } else {
          reads.push_back({static_cast<u32>(i - warp_start), addr});
        }
      }
      if (!reads.empty()) {
        shm.warp_read(reads);
      }
    }
    stats.warp_merge_steps += E;
  }
  stats.shared_merge_reads += delta(shm.stats(), before_merge);

  // Barrier, then thread-contiguous write-back of the register file, then
  // another barrier before anyone reads the merged output.
  if (write_back) {
    shm.barrier();
    std::vector<gpusim::LaneWrite> writes;
    writes.reserve(w);
    for (std::size_t warp_start = 0; warp_start < t; warp_start += w) {
      const std::size_t warp_end = std::min<std::size_t>(warp_start + w, t);
      for (u32 s = 0; s < E; ++s) {
        writes.clear();
        for (std::size_t i = warp_start; i < warp_end; ++i) {
          writes.push_back({static_cast<u32>(i - warp_start),
                            ctxs[i].out_begin + s, regs[i * E + s]});
        }
        shm.warp_write(writes);
      }
    }
    shm.barrier();
  }

  return regs;
}

gpusim::ir::KernelDesc describe_block_merge(u32 w, u32 b, u32 pad) {
  namespace ir = gpusim::ir;
  WCM_EXPECTS(w > 0 && b >= w && is_pow2(b),
              "block size must be a power of two no smaller than the warp");
  ir::KernelDesc d;
  d.kernel = "block-merge";
  d.w = w;
  d.b = b;
  d.pad = pad;
  const int e = d.add_symbol("E", ir::SymRole::parameter, 3,
                             static_cast<i64>(w) - 1, 2, 1);
  const int s = d.add_symbol("s", ir::SymRole::parameter, 0,
                             static_cast<i64>(w) - 2, 1, 0, e);
  const int wse = d.add_symbol("wsE", ir::SymRole::warp_shift, 0, 0, w, 0);
  const i64 last_warp = static_cast<i64>(w) * ((static_cast<i64>(b) - 1) /
                                               static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(wse)].max_form =
      ir::LinForm::sym(e, last_warp);
  d.symbols[static_cast<std::size_t>(wse)].step_form =
      ir::LinForm::sym(e, static_cast<i64>(w));
  d.words = ir::LinForm::sym(e, static_cast<i64>(b));
  const ir::LinForm tile_hi =
      ir::LinForm::sym(e, static_cast<i64>(b)) - ir::LinForm::constant(1);

  // Round r merges pairs of runs of half = 2^(r-1)*E elements with
  // tpp = 2^r threads per pair; a warp spans whole pairs while tpp <= w
  // (its merge sources form ONE contiguous w*E range) and part of one
  // pair afterwards (two contiguous ranges: an A part and a B part).
  // Non-power-of-two warps can straddle pair boundaries on both sides;
  // floor((w-1)/tpp)+2 pairs bound the warp's reach in that regime.
  const u32 rounds = log2_exact(b);
  for (u32 r = 1; r <= rounds; ++r) {
    const u64 tpp = u64{1} << r;
    const bool aligned = tpp <= w ? w % tpp == 0 : tpp % w == 0;
    const u64 npairs = !aligned ? (w - 1) / tpp + 2
                                : (tpp <= w ? w / tpp : 1);
    const std::string tag = " (round " + std::to_string(r) + ")";
    d.groups.push_back(ir::with_region(
        ir::window_group(
            "search probes" + tag, ir::GroupKind::read, w,
            ir::LinForm::sym(e, static_cast<i64>(npairs * (tpp / 2))),
            ir::LinForm::constant(static_cast<i64>(npairs)),
            "<= ceil(log2(half+1)) bisection iterations, A then B probes"),
        ir::LinForm::constant(0), tile_hi));
    d.groups.push_back(ir::with_region(
        ir::window_group(
            "merge reads" + tag, ir::GroupKind::read, w,
            aligned ? ir::LinForm::sym(e, static_cast<i64>(w))
                    : ir::LinForm::sym(e, static_cast<i64>(npairs * tpp)),
            ir::LinForm::constant(aligned ? (tpp <= w ? 1 : 2) : 1),
            "E lock-step iterations x b/w warps", /*atomic=*/false,
            /*theorem_site=*/true),
        ir::LinForm::constant(0), tile_hi));
  }
  d.groups.push_back(ir::barrier_group("pre/post write-back barrier"));
  d.groups.back().repeat = "2 per round";
  ir::StepGroup wb = ir::affine_group(
      "merged write-back", ir::GroupKind::write, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps x log2(b) rounds");
  wb.masked = b % w != 0;
  d.groups.push_back(std::move(wb));
  return d;
}

}  // namespace wcm::sort
