#pragma once
// Simulated LSD radix sort (Satish et al. 2009; CUB — the paper's refs
// [25], [32]): the non-comparison alternative in the paper's related work.
// Its interest for this study is that its shared-memory conflicts are
// data-dependent through a *different* mechanism than merging: per-digit
// histogram construction, where w threads increment bin counters in shared
// memory — keys sharing a digit collide on the same bank.  The merge
// sort's worst-case permutation is irrelevant to it (digits of a
// permutation of 0..n-1 are near-uniform), but radix sort has its own
// adversary: keys with constant digits serialize every histogram update
// w ways.
//
// Structure per pass (digit_bits-wide digits, LSD order): every block
// builds a per-tile histogram in shared memory (accounted: one warp-wide
// read-modify-write per key, banked by bin), the histograms are combined
// into global digit offsets (host-combined, charged as one coalesced pass),
// and keys scatter to their buckets (uncoalesced writes, charged per
// segment).

#include <span>

#include "sort/report.hpp"

namespace wcm::sort {

/// Sort `input` with the simulated radix sort.  Keys must be non-negative.
/// `digit_bits` in [1, 16]; cfg.E is used as keys per thread for tile
/// sizing; requires |input| to be a positive multiple of cfg.tile().
[[nodiscard]] SortReport radix_sort(std::span<const word> input,
                                    const SortConfig& cfg,
                                    const gpusim::Device& dev,
                                    u32 digit_bits = 4,
                                    std::vector<word>* output = nullptr);

/// Number of passes for keys < 2^key_bits with the given digit width.
[[nodiscard]] u32 radix_pass_count(u32 key_bits, u32 digit_bits);

/// Radix sort's own adversarial input: n keys whose digits are all equal
/// (every histogram update of every pass collides), while still being n
/// *distinct* keys is impossible — so this uses the standard adversary:
/// all keys identical (the histogram worst case the literature pads
/// against).
[[nodiscard]] std::vector<word> radix_adversarial_input(std::size_t n);

}  // namespace wcm::sort
