#include "sort/blocksort.hpp"

#include <algorithm>
#include <vector>

#include "sort/block_merge.hpp"
#include "sort/describe.hpp"
#include "sort/registers.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"

namespace wcm::sort {

void simulate_block_sort(gpusim::SharedMemory& shm, std::span<word> tile,
                         const SortConfig& cfg, gpusim::KernelStats& stats) {
  cfg.validate();
  WCM_EXPECTS(tile.size() == cfg.tile(), "tile size mismatch");
  WCM_EXPECTS(shm.words() >= cfg.tile(), "shared memory too small");
  WCM_EXPECTS(shm.warp_size() == cfg.w, "warp size mismatch");
  WCM_SPAN("blocksort.tile");

  const u32 E = cfg.E;
  const u32 b = cfg.b;
  const u32 w = cfg.w;

  // Block entry: one SharedMemory hosts many simulated blocks in sequence,
  // so the kernel launch boundary is a barrier in the recorded trace.
  shm.barrier();

  // Coalesced global load of the tile into shared memory.
  shm.fill(tile);
  stats.global_transactions += ceil_div(tile.size(), w);
  stats.global_requests += tile.size();

  // Each thread loads its E consecutive keys from shared into registers
  // (thread t reads addresses tE .. tE+E-1, lock-step across the warp),
  // sorts them with the odd-even network, and stores them back.
  std::vector<gpusim::LaneRead> reads;
  std::vector<gpusim::LaneWrite> writes;
  std::vector<word> regs(E);
  for (u32 warp_start = 0; warp_start < b; warp_start += w) {
    for (u32 s = 0; s < E; ++s) {
      reads.clear();
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        reads.push_back({lane, static_cast<std::size_t>(warp_start + lane) * E + s});
      }
      shm.warp_read(reads);
    }
    stats.register_compare_steps += odd_even_comparator_count(E);
  }
  // Register sort is per-thread; perform it on the backing data.
  for (u32 t = 0; t < b; ++t) {
    const std::size_t base = static_cast<std::size_t>(t) * E;
    regs.assign(tile.begin() + static_cast<std::ptrdiff_t>(base),
                tile.begin() + static_cast<std::ptrdiff_t>(base + E));
    odd_even_sort(regs);
    for (u32 s = 0; s < E; ++s) {
      shm.poke(base + s, regs[s]);
    }
  }
  for (u32 warp_start = 0; warp_start < b; warp_start += w) {
    for (u32 s = 0; s < E; ++s) {
      writes.clear();
      for (u32 lane = 0; lane < w && warp_start + lane < b; ++lane) {
        const std::size_t addr =
            static_cast<std::size_t>(warp_start + lane) * E + s;
        writes.push_back({lane, addr, shm.peek(addr)});
      }
      shm.warp_write(writes);
    }
  }
  // __syncthreads: the merge rounds read other threads' sorted runs.
  shm.barrier();

  // log2(b) intra-block pairwise merge rounds.  In round i, b / 2^i pairs of
  // runs of size 2^(i-1) E are merged by 2^i threads each; every thread
  // handles E output elements.  Searches and merges run for the whole block
  // at once so warps spanning several pairs share warp steps, as on real
  // hardware.
  const u32 rounds = log2_exact(b);
  std::vector<ThreadSearchCtx> search_ctxs(b);
  std::vector<ThreadMergeCtx> ctxs(b);
  for (u32 round = 1; round <= rounds; ++round) {
    const std::size_t threads_per_pair = std::size_t{1} << round;
    const std::size_t half = (threads_per_pair / 2) * E;  // run size
    const std::size_t pair_out = threads_per_pair * E;

    for (std::size_t pair = 0; pair < cfg.tile() / pair_out; ++pair) {
      const std::size_t base = pair * pair_out;
      for (std::size_t t = 0; t < threads_per_pair; ++t) {
        ThreadSearchCtx& c = search_ctxs[pair * threads_per_pair + t];
        c.a_begin = base;
        c.a_end = base + half;
        c.b_begin = base + half;
        c.b_end = base + pair_out;
        c.diag = t * E;
      }
    }
    const auto coranks = simulate_block_search(shm, search_ctxs, stats);

    for (std::size_t pair = 0; pair < cfg.tile() / pair_out; ++pair) {
      const std::size_t base = pair * pair_out;
      for (std::size_t t = 0; t < threads_per_pair; ++t) {
        const std::size_t tid = pair * threads_per_pair + t;
        const bool last = t + 1 == threads_per_pair;
        ThreadMergeCtx& c = ctxs[tid];
        c.a_begin = base + coranks[tid].i;
        c.b_begin = base + half + coranks[tid].j;
        // Each thread's segment ends at the next thread's co-rank.
        c.a_end = base + (last ? half : coranks[tid + 1].i);
        c.b_end = base + half + (last ? half : coranks[tid + 1].j);
        c.out_begin = base + t * E;
      }
    }
    simulate_block_merge(shm, ctxs, E, /*write_back=*/true, stats,
                         cfg.realistic_refills);
  }

  // Coalesced global store of the sorted tile.
  const auto sorted = shm.dump(0, cfg.tile());
  std::copy(sorted.begin(), sorted.end(), tile.begin());
  stats.global_transactions += ceil_div(tile.size(), w);
  stats.global_requests += tile.size();

  WCM_ENSURES(std::is_sorted(tile.begin(), tile.end()),
              "block sort must produce a sorted tile");
}

gpusim::ir::KernelDesc describe_blocksort(u32 w, u32 b, u32 pad) {
  namespace ir = gpusim::ir;
  // The merge-round describer owns the shape contract-checks and declares
  // the shared E/s/wsE symbols; append() unifies them by name.
  ir::KernelDesc merge = describe_block_merge(w, b, pad);
  ir::KernelDesc d;
  d.kernel = "blocksort";
  d.w = w;
  d.b = b;
  d.pad = pad;
  const int e = d.add_symbol("E", ir::SymRole::parameter, 3,
                             static_cast<i64>(w) - 1, 2, 1);
  const int s = d.add_symbol("s", ir::SymRole::parameter, 0,
                             static_cast<i64>(w) - 2, 1, 0, e);
  const int wse = d.add_symbol("wsE", ir::SymRole::warp_shift, 0, 0, w, 0);
  // True extent of the warp shift: warp_start*E for warp_start in
  // {0, w, ..., w*floor((b-1)/w)} (the last value drops below b-w only
  // when w does not divide b, where the final warp is partial).
  const i64 last_warp = static_cast<i64>(w) * ((static_cast<i64>(b) - 1) /
                                               static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(wse)].max_form =
      ir::LinForm::sym(e, last_warp);
  d.symbols[static_cast<std::size_t>(wse)].step_form =
      ir::LinForm::sym(e, static_cast<i64>(w));
  d.words = ir::LinForm::sym(e, static_cast<i64>(b));

  d.groups.push_back(ir::barrier_group("block entry"));
  d.groups.push_back(ir::with_region(
      ir::fill_group("tile load", "1 per tile"), ir::LinForm::constant(0),
      ir::LinForm::sym(e, static_cast<i64>(b)) - ir::LinForm::constant(1)));
  // Thread t reads/writes its E consecutive keys: lane address
  // wsE + s + E*lane — the Dotsenko stride-E pattern the congruence
  // domain proves conflict-free for every odd E (unpadded).
  ir::StepGroup reg_load = ir::affine_group(
      "register-sort load", ir::GroupKind::read, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps");
  reg_load.masked = b % w != 0;
  ir::StepGroup reg_store = ir::affine_group(
      "register-sort store", ir::GroupKind::write, w,
      ir::LinForm::sym(wse) + ir::LinForm::sym(s), ir::LinForm::sym(e),
      "E steps x b/w warps");
  reg_store.masked = b % w != 0;
  d.groups.push_back(std::move(reg_load));
  d.groups.push_back(std::move(reg_store));
  d.groups.push_back(ir::barrier_group("before merge rounds"));
  d.append(merge);
  return d;
}

}  // namespace wcm::sort
