#include "sort/config.hpp"

#include <sstream>

#include "util/check.hpp"

namespace wcm::sort {

void SortConfig::validate() const {
  WCM_CHECK_CONFIG(E >= 1, "E must be positive");
  // Any warp width >= 1 is a valid machine shape: the parametric-w passes
  // and the describer cross-check exercise non-power-of-two warps (w=3).
  WCM_CHECK_CONFIG(w >= 1, "warp size must be positive");
  WCM_CHECK_CONFIG(is_pow2(b),
                   "block size must be a power of two (paper Sec. II-A)");
  WCM_CHECK_CONFIG(b >= 2 * w, "block must contain at least two warps");
}

std::string SortConfig::to_string() const {
  std::ostringstream os;
  os << "E=" << E << ",b=" << b << ",w=" << w;
  return os.str();
}

SortConfig thrust_params(const gpusim::Device& dev) {
  if (dev.cc_major <= 5) {
    return params_15_512();
  }
  return params_17_256();
}

SortConfig mgpu_params(const gpusim::Device& dev) {
  if (dev.cc_major <= 5) {
    return params_15_128();
  }
  return params_17_256();
}

SortConfig params_15_512() { return SortConfig{15, 512, 32}; }
SortConfig params_17_256() { return SortConfig{17, 256, 32}; }
SortConfig params_15_128() { return SortConfig{15, 128, 32}; }

}  // namespace wcm::sort
