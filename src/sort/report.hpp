#pragma once
// The result of one simulated sort: per-kernel statistics, totals, and
// modeled time.  Everything the figures plot is derived from this struct.

#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/stats.hpp"
#include "sort/config.hpp"

namespace wcm::sort {

using dmm::word;

struct SortReport {
  SortConfig config;
  gpusim::Device device;
  std::size_t n = 0;

  /// Block sort, then one entry per global merge round, in execution order.
  std::vector<gpusim::RoundStats> rounds;

  /// Sums over all rounds.
  gpusim::KernelStats totals;
  gpusim::KernelTime total_time;

  [[nodiscard]] double seconds() const noexcept { return total_time.seconds; }
  /// Elements sorted per second of modeled time (the figures' y-axis).
  [[nodiscard]] double throughput() const noexcept;
  /// Modeled milliseconds per element (Figure 6 left axis).
  [[nodiscard]] double ms_per_element() const noexcept;
  /// Bank conflicts per element (Figure 6 right axis): replay wavefronts,
  /// the metric NVIDIA's profiler reports.
  [[nodiscard]] double conflicts_per_element() const noexcept;
  /// beta_2 over the whole sort's lock-step merge reads.
  [[nodiscard]] double beta2() const noexcept;
  /// beta_1 over the whole sort's merge-path probes.
  [[nodiscard]] double beta1() const noexcept;

  [[nodiscard]] std::string summary() const;
};

}  // namespace wcm::sort
