#pragma once
// Simulated block-level parallel scan (prefix sum) — the paper's
// introductory example (Dotsenko et al., ICS 2008, ref [12]): each thread
// sequentially scans E consecutive elements in shared memory, the threads'
// partial sums are combined, and the totals are added back.  When every
// thread's stride E shares a factor with the bank count w, the per-thread
// column accesses conflict deterministically; Dotsenko's fix — pad so the
// effective stride is co-prime with w — eliminates them.  This substrate
// exists to reproduce that original observation on the same banked-memory
// machinery the merge sort uses.
//
// Unlike the merge sort, the scan's access pattern is data-independent, so
// its conflicts are a function of (w, E, padding) only.

#include <span>

#include "sort/report.hpp"

namespace wcm::sort {

/// Inclusive prefix sum of `input`, simulated block-wise (tiles of bE, a
/// serial carry between tiles — the single-kernel portion is what the bank
/// analysis concerns).  Requires |input| to be a positive multiple of bE.
[[nodiscard]] SortReport block_scan(std::span<const word> input,
                                    const SortConfig& cfg,
                                    const gpusim::Device& dev,
                                    std::vector<word>* output = nullptr);

}  // namespace wcm::sort
