#include "sort/shearsort.hpp"

#include <algorithm>
#include <functional>

#include "gpusim/shared_memory.hpp"
#include "sort/describe.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"

namespace wcm::sort {

namespace {

/// Sort row `r` of the staged mesh in registers: one stride-1 warp load,
/// a warp-internal sort (shuffle network in a real kernel — only the
/// shared accesses are accounted), one stride-1 warp store.  Snake order:
/// even rows ascend, odd rows descend.
void row_pass(gpusim::SharedMemory& shm, std::size_t r, u32 w,
              std::vector<gpusim::LaneRead>& reads,
              std::vector<gpusim::LaneWrite>& writes) {
  const std::size_t base = r * w;
  reads.clear();
  for (u32 lane = 0; lane < w; ++lane) {
    reads.push_back({lane, base + lane});
  }
  shm.warp_read(reads);
  std::vector<word> row(w);
  for (u32 lane = 0; lane < w; ++lane) {
    row[lane] = shm.peek(base + lane);
  }
  if (r % 2 == 0) {
    std::sort(row.begin(), row.end());
  } else {
    std::sort(row.begin(), row.end(), std::greater<word>());
  }
  writes.clear();
  for (u32 lane = 0; lane < w; ++lane) {
    writes.push_back({lane, base + lane, row[lane]});
  }
  shm.warp_write(writes);
}

/// Sort column `c` in registers: ceil(R/w) stride-w warp loads (lane l
/// holds row rb + l), a cross-lane register sort, stride-w stores.  The
/// stride-w steps are the engine's only conflict candidates: a full w-way
/// conflict on the linear layout, conflict-free under padding with
/// gcd(pad, w) = 1 or under the xor/rotation permutations.
void column_pass(gpusim::SharedMemory& shm, std::size_t c, std::size_t rows,
                 u32 w, std::vector<gpusim::LaneRead>& reads,
                 std::vector<gpusim::LaneWrite>& writes) {
  std::vector<word> column(rows);
  for (std::size_t rb = 0; rb < rows; rb += w) {
    const u32 lanes = static_cast<u32>(std::min<std::size_t>(w, rows - rb));
    reads.clear();
    for (u32 lane = 0; lane < lanes; ++lane) {
      reads.push_back({lane, (rb + lane) * w + c});
    }
    shm.warp_read(reads);
    for (u32 lane = 0; lane < lanes; ++lane) {
      column[rb + lane] = shm.peek((rb + lane) * w + c);
    }
  }
  std::sort(column.begin(), column.end());
  for (std::size_t rb = 0; rb < rows; rb += w) {
    const u32 lanes = static_cast<u32>(std::min<std::size_t>(w, rows - rb));
    writes.clear();
    for (u32 lane = 0; lane < lanes; ++lane) {
      writes.push_back({lane, (rb + lane) * w + c, column[rb + lane]});
    }
    shm.warp_write(writes);
  }
}

/// Stage one tile, shear it until snake-sorted, and unstage in snake
/// order so the tile leaves row-major ascending.
void shear_tile(gpusim::SharedMemory& shm, std::span<word> tile_data, u32 b,
                u32 E, u32 w, gpusim::KernelStats& stats) {
  const std::size_t tile = tile_data.size();
  const std::size_t rows = tile / w;

  // Block boundary: one SharedMemory hosts many simulated tiles.
  shm.barrier();

  // Coalesced load, then thread-linear warp-synchronous staging stores
  // (thread t stores elements t, t + b, ..., t + (E-1)b; stride-1).
  stats.global_transactions += tile / w;
  stats.global_requests += tile;
  std::vector<gpusim::LaneWrite> writes;
  std::vector<gpusim::LaneRead> reads;
  for (u32 warp_start = 0; warp_start < b; warp_start += w) {
    for (u32 s = 0; s < E; ++s) {
      writes.clear();
      for (u32 lane = 0; lane < w; ++lane) {
        const std::size_t idx = static_cast<std::size_t>(warp_start + lane) +
                                static_cast<std::size_t>(s) * b;
        writes.push_back({lane, idx, tile_data[idx]});
      }
      shm.warp_write(writes);
    }
  }
  // __syncthreads: row/column warps read other warps' staged keys.
  shm.barrier();

  // ceil(log2 rows) shear iterations, then the final row pass (0-1
  // principle: each row+column pair halves the dirty rows).
  u32 iters = 0;
  while ((std::size_t{1} << iters) < rows) {
    ++iters;
  }
  for (u32 it = 0; it < iters; ++it) {
    for (std::size_t r = 0; r < rows; ++r) {
      row_pass(shm, r, w, reads, writes);
    }
    stats.warp_merge_steps += rows;
    shm.barrier();
    for (std::size_t c = 0; c < w; ++c) {
      column_pass(shm, c, rows, w, reads, writes);
    }
    stats.warp_merge_steps += w * ceil_div(rows, w);
    shm.barrier();
  }
  for (std::size_t r = 0; r < rows; ++r) {
    row_pass(shm, r, w, reads, writes);
  }
  stats.warp_merge_steps += rows;
  shm.barrier();

  // Unstage in snake order (odd rows reversed), one warp step per row.
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t base = r * w;
    reads.clear();
    for (u32 lane = 0; lane < w; ++lane) {
      const std::size_t col = r % 2 == 0 ? lane : w - 1 - lane;
      reads.push_back({lane, base + col});
    }
    shm.warp_read(reads);
    for (u32 lane = 0; lane < w; ++lane) {
      const std::size_t col = r % 2 == 0 ? lane : w - 1 - lane;
      tile_data[base + lane] = shm.peek(base + col);
    }
  }
  stats.global_transactions += tile / w;
  stats.global_requests += tile;
}

}  // namespace

SortReport shearsort(std::span<const word> input, const SortConfig& cfg,
                     const gpusim::Device& dev, std::vector<word>* output) {
  cfg.validate();
  WCM_EXPECTS(cfg.w == dev.warp_size, "config warp size must match device");
  // The mesh is w columns by bE/w rows and the staging loop writes full
  // warps; both need the block to split into whole warps.
  WCM_EXPECTS(cfg.b % cfg.w == 0, "block size must be a multiple of the warp");
  const std::size_t tile = cfg.tile();
  const std::size_t n = input.size();
  WCM_EXPECTS(n >= tile && n % tile == 0,
              "n must be a positive multiple of the tile bE");

  const gpusim::LaunchConfig launch{n / tile, cfg.b, cfg.shared_bytes()};
  const gpusim::Calibration cal =
      library_calibration(MergeSortLibrary::thrust);

  SortReport report;
  report.config = cfg;
  report.device = dev;
  report.n = n;

  std::vector<word> data(input.begin(), input.end());
  gpusim::SharedMemory shm(
      gpusim::SharedLayout{cfg.w, cfg.padding, cfg.layout}, tile);
  shm.attach_trace(cfg.trace_sink);

  WCM_SPAN("shearsort.sort");

  // Per-tile mesh sort in shared memory.
  {
    WCM_SPAN("shearsort.tiles");
    gpusim::KernelStats stats;
    for (std::size_t base = 0; base < n; base += tile) {
      shm.reset_stats();
      shear_tile(shm, std::span<word>(data).subspan(base, tile), cfg.b, cfg.E,
                 cfg.w, stats);
      stats.shared += shm.stats();
      stats.blocks_launched += 1;
    }
    stats.elements_processed += n;

    gpusim::RoundStats round;
    round.name = "shearsort tiles";
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("shearsort", round.name, cfg.E,
                                   cfg.padding, stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  // Pairwise merge of sorted runs in global memory: coalesced streaming,
  // no shared-memory traffic, so the engine's conflict certificate covers
  // the whole sort.
  u32 round_idx = 0;
  for (std::size_t run = tile; run < n; run *= 2) {
    WCM_SPAN("shearsort.merge_round");
    ++round_idx;
    gpusim::KernelStats stats;
    for (std::size_t base = 0; base + run < n; base += 2 * run) {
      const std::size_t hi = std::min(base + 2 * run, n);
      std::inplace_merge(data.begin() + static_cast<std::ptrdiff_t>(base),
                         data.begin() + static_cast<std::ptrdiff_t>(base + run),
                         data.begin() + static_cast<std::ptrdiff_t>(hi));
      stats.global_transactions += 2 * (hi - base) / cfg.w;
      stats.global_requests += 2 * (hi - base);
      stats.warp_merge_steps += (hi - base) / cfg.w;
    }
    stats.blocks_launched += n / (2 * run);
    stats.elements_processed += n;

    gpusim::RoundStats round;
    round.name = "merge round " + std::to_string(round_idx);
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("shearsort", round.name, cfg.E,
                                   cfg.padding, stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  WCM_ENSURES(std::is_sorted(data.begin(), data.end()),
              "shearsort must sort");
  if (output != nullptr) {
    *output = std::move(data);
  }
  return report;
}

gpusim::ir::KernelDesc describe_shearsort(u32 w, u32 b, u32 pad) {
  namespace ir = gpusim::ir;
  WCM_EXPECTS(w > 0 && b >= w && b % w == 0,
              "block shape must be a positive multiple of the warp");
  ir::KernelDesc d;
  d.kernel = "shearsort";
  d.w = w;
  d.b = b;
  d.pad = pad;
  // Every row base (r*w) and row-block base (rb*w) is a multiple of w and
  // uniform across the warp: one warp-shift symbol absorbs them all.  The
  // column index is the engine's only range parameter; the mesh height R
  // only changes how *many* stride-w steps run, never their shape (partial
  // last warps are lane prefixes of the declared full-warp pattern, whose
  // degree dominates).  The staging bases warp_start + s*b and the row
  // bases r*w jointly sweep every multiple of w in [0, bE - w] (w | b), so
  // the shift's value set is exactly {0, w, 2w, ..., bE - w}.
  // Parameters first: a warp shift's extent may only reference symbols
  // declared before it (the divergence pass rejects forward references).
  const int c = d.add_symbol("c", ir::SymRole::parameter, 0, w - 1);
  const int e = d.add_symbol("E", ir::SymRole::parameter, 3,
                             static_cast<i64>(w) - 1, 2, 1);
  const int ws = d.add_symbol("ws", ir::SymRole::warp_shift, 0, 0, w, 0);
  d.symbols[static_cast<std::size_t>(ws)].max_form =
      ir::LinForm::sym(e, static_cast<i64>(b)) -
      ir::LinForm::constant(static_cast<i64>(w));
  d.symbols[static_cast<std::size_t>(ws)].step_form =
      ir::LinForm::constant(static_cast<i64>(w));
  d.words = ir::LinForm::sym(e, static_cast<i64>(b));
  const ir::LinForm tile_hi =
      ir::LinForm::sym(e, static_cast<i64>(b)) - ir::LinForm::constant(1);

  d.groups.push_back(ir::barrier_group("block entry"));
  d.groups.push_back(ir::affine_group(
      "stage store", ir::GroupKind::write, w, ir::LinForm::sym(ws),
      ir::LinForm::constant(1), "E steps x b/w warps"));
  d.groups.push_back(ir::barrier_group("after staging"));

  d.groups.push_back(ir::affine_group(
      "row load", ir::GroupKind::read, w, ir::LinForm::sym(ws),
      ir::LinForm::constant(1), "per row per shear iteration"));
  d.groups.push_back(ir::affine_group(
      "row store", ir::GroupKind::write, w, ir::LinForm::sym(ws),
      ir::LinForm::constant(1), "per row per shear iteration"));
  d.groups.push_back(ir::barrier_group("rows sorted"));

  // The theorem-relevant site: lane l touches (rb + l)*w + c — a pure
  // stride-w column traversal.  The shift models the row-block base rb*w
  // (multiples of w^2), so the generic ws extent over-approximates the
  // footprint; the declared region restores the kernel's tile containment.
  d.groups.push_back(ir::with_region(
      ir::affine_group(
          "column load", ir::GroupKind::read, w,
          ir::LinForm::sym(ws) + ir::LinForm::sym(c), ir::LinForm::constant(w),
          "per column row-block per shear iteration"),
      ir::LinForm::constant(0), tile_hi));
  d.groups.push_back(ir::with_region(
      ir::affine_group(
          "column store", ir::GroupKind::write, w,
          ir::LinForm::sym(ws) + ir::LinForm::sym(c), ir::LinForm::constant(w),
          "per column row-block per shear iteration"),
      ir::LinForm::constant(0), tile_hi));
  d.groups.push_back(ir::barrier_group("columns sorted"));

  d.groups.push_back(ir::affine_group(
      "unstage load even row", ir::GroupKind::read, w, ir::LinForm::sym(ws),
      ir::LinForm::constant(1), "per even row"));
  d.groups.push_back(ir::affine_group(
      "unstage load odd row", ir::GroupKind::read, w,
      ir::LinForm::sym(ws) + ir::LinForm::constant(w - 1),
      ir::LinForm::constant(-1), "per odd row"));
  return d;
}

}  // namespace wcm::sort
