#include "sort/report.hpp"

#include <sstream>

namespace wcm::sort {

double SortReport::throughput() const noexcept {
  if (total_time.seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(n) / total_time.seconds;
}

double SortReport::ms_per_element() const noexcept {
  if (n == 0) {
    return 0.0;
  }
  return total_time.seconds * 1e3 / static_cast<double>(n);
}

double SortReport::conflicts_per_element() const noexcept {
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(totals.shared.replays) /
         static_cast<double>(n);
}

double SortReport::beta2() const noexcept { return gpusim::beta2(totals); }
double SortReport::beta1() const noexcept { return gpusim::beta1(totals); }

std::string SortReport::summary() const {
  std::ostringstream os;
  os << device.name << " [" << config.to_string() << "] n=" << n
     << " time=" << total_time.seconds * 1e3 << "ms"
     << " throughput=" << throughput() / 1e6 << "Me/s"
     << " conflicts/elem=" << conflicts_per_element()
     << " beta1=" << beta1() << " beta2=" << beta2();
  return os.str();
}

}  // namespace wcm::sort
