#pragma once
// Simulated GPU shearsort (Scherson & Sen's row/column mesh sort).  Like
// bitonic sort it is *data-oblivious*: the schedule of shared-memory
// accesses depends only on the shape, never on the keys — but unlike the
// merge engines its only non-unit-stride pattern is the column traversal,
// a pure stride-w access.  That makes it the certification showcase: under
// the linear layout every column step is a full w-way conflict (the
// prover's counterexample), while one padding word per row or a bank
// permutation (gpusim/layout.hpp xor/rotation) makes every step of the
// whole engine provably conflict-free for *all* parameters — the
// machine-checked "bank-conflict-free engine" of `wcmgen prove --certify`.
//
// Execution model: each block stages a tile of bE keys as an R x w mesh
// (R = bE/w rows) in shared memory.  ceil(log2 R) iterations of
// (snake row sort, column sort) plus a final row pass leave the mesh
// snake-sorted (0-1 principle); rows and columns are sorted in registers
// by one warp each (stride-1 row loads, stride-w column loads).  Tiles
// then merge pairwise in global memory — no shared accesses — until one
// run remains.

#include <span>

#include "sort/report.hpp"

namespace wcm::sort {

/// Sort `input` with the simulated shearsort engine.  Requires |input| to
/// be a positive multiple of the tile bE.  `cfg.padding` / `cfg.layout`
/// select the shared-memory defense the engine runs under.
[[nodiscard]] SortReport shearsort(std::span<const word> input,
                                   const SortConfig& cfg,
                                   const gpusim::Device& dev,
                                   std::vector<word>* output = nullptr);

}  // namespace wcm::sort
