#pragma once
// The base case's per-thread register sort: an odd-even transposition
// network on E keys (Satish, Harris & Garland 2009).  A sorting *network*
// (data-independent compare-exchange schedule) is required because all
// threads of a warp execute it in lock-step; it touches no shared memory.

#include <span>

#include "dmm/machine.hpp"
#include "util/math.hpp"

namespace wcm::sort {

using dmm::word;

/// Sort `keys` in place with the odd-even transposition network and return
/// the number of compare-exchange operations performed (data-independent:
/// depends only on keys.size()).
std::size_t odd_even_sort(std::span<word> keys);

/// Number of compare-exchanges the network performs on n keys: n rounds of
/// alternating odd/even pairs, i.e. n * (n - 1) / 2 comparators in total.
[[nodiscard]] std::size_t odd_even_comparator_count(std::size_t n) noexcept;

}  // namespace wcm::sort
