#pragma once
// Multiway (K-way) merge sort in the style of Karsin, Weichert, Casanova,
// Iacono & Sitchinava (ICS 2018) — the paper's reference [19] and the
// source of its A_g / A_s analysis.  Merging K runs per round reduces the
// number of global memory passes from ceil(log2(N/bE)) to
// ceil(log_K(N/bE)), the algorithm's selling point, at the price of more
// comparison work per merged element (a log2(K)-deep selection per step)
// and a more expensive partitioning stage.
//
// Structure per round:
//   * groups of K adjacent sorted runs are merged together;
//   * every bE output tile's boundary is located by a K-way rank partition
//     (value-domain binary search probing one element per run per
//     iteration — charged as dependent global latency like the pairwise
//     partition);
//   * the block stages its K segments in shared memory, every thread finds
//     its E-element quantile by the same value-domain search in shared
//     (probes accounted warp-synchronously), then lock-step merges E
//     elements — one consumed-element read per iteration, exactly the
//     access stream the pairwise analysis covers, but fed from K runs.
//
// The worst-case construction of the paper targets the *pairwise* merge
// tree; this substrate exists to measure how specific the attack is (see
// bench/multiway_comparison).

#include <span>

#include "sort/report.hpp"

namespace wcm::sort {

/// Sort `input` with the simulated K-way merge sort.  Requires
/// |input| to be a positive multiple of cfg.tile() and ways >= 2.
[[nodiscard]] SortReport multiway_merge_sort(std::span<const word> input,
                                             const SortConfig& cfg,
                                             const gpusim::Device& dev,
                                             u32 ways = 4,
                                             std::vector<word>* output =
                                                 nullptr);

/// Number of global rounds the K-way sort needs for n elements.
[[nodiscard]] std::size_t multiway_round_count(std::size_t n,
                                               const SortConfig& cfg,
                                               u32 ways);

}  // namespace wcm::sort
