#include "sort/cpu_reference.hpp"

#include <algorithm>

#include "mergepath/serial_merge.hpp"
#include "util/check.hpp"

namespace wcm::sort {

std::vector<word> std_sort(std::span<const word> input) {
  std::vector<word> v(input.begin(), input.end());
  std::sort(v.begin(), v.end());
  return v;
}

namespace {

std::vector<word> run_rounds(std::span<const word> input, std::size_t base,
                             std::size_t max_rounds) {
  WCM_EXPECTS(base > 0 && input.size() % base == 0,
              "input must be a multiple of the base-case width");
  std::vector<word> data(input.begin(), input.end());
  std::vector<word> buffer(data.size());

  for (std::size_t lo = 0; lo < data.size(); lo += base) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
              data.begin() + static_cast<std::ptrdiff_t>(lo + base));
  }

  std::size_t run = base;
  std::size_t rounds = 0;
  while (run < data.size() && rounds < max_rounds) {
    const std::size_t out_run = 2 * run;
    for (std::size_t lo = 0; lo < data.size(); lo += out_run) {
      if (lo + run >= data.size()) {
        std::copy(data.begin() + static_cast<std::ptrdiff_t>(lo), data.end(),
                  buffer.begin() + static_cast<std::ptrdiff_t>(lo));
        continue;
      }
      const std::size_t len_b = std::min(run, data.size() - lo - run);
      mergepath::serial_merge(
          std::span<const word>(data).subspan(lo, run),
          std::span<const word>(data).subspan(lo + run, len_b),
          std::span<word>(buffer).subspan(lo, run + len_b));
    }
    data.swap(buffer);
    run = out_run;
    ++rounds;
  }
  return data;
}

}  // namespace

std::vector<word> cpu_pairwise_merge_sort(std::span<const word> input,
                                          std::size_t base) {
  return run_rounds(input, base, input.size());
}

std::vector<word> cpu_pairwise_partial(std::span<const word> input,
                                       std::size_t base, std::size_t rounds) {
  return run_rounds(input, base, rounds);
}

}  // namespace wcm::sort
