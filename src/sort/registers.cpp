#include "sort/registers.hpp"

#include <utility>

namespace wcm::sort {

std::size_t odd_even_sort(std::span<word> keys) {
  const std::size_t n = keys.size();
  std::size_t compares = 0;
  for (std::size_t round = 0; round < n; ++round) {
    const std::size_t start = round % 2;
    for (std::size_t i = start; i + 1 < n; i += 2) {
      ++compares;
      if (keys[i] > keys[i + 1]) {
        std::swap(keys[i], keys[i + 1]);
      }
    }
  }
  return compares;
}

std::size_t odd_even_comparator_count(std::size_t n) noexcept {
  if (n < 2) {
    return 0;
  }
  // n rounds; even rounds have ceil((n-1)/2) comparators, odd rounds
  // floor((n-1)/2).  Summed: n * (n - 1) / 2.
  return n * (n - 1) / 2;
}

}  // namespace wcm::sort
