#pragma once
// The base case of the GPU pairwise merge sort (paper Sec. II-A): each
// thread block sorts an independent tile of bE consecutive elements in
// shared memory — every thread first sorts E keys in registers with the
// odd-even network, then the block performs log2(b) intra-block pairwise
// merge rounds, where round i merges b/2^i pairs of lists of size 2^(i-1)E
// with 2^i threads per pair via merge path.

#include <span>

#include "gpusim/shared_memory.hpp"
#include "gpusim/stats.hpp"
#include "sort/config.hpp"

namespace wcm::sort {

using dmm::word;

/// Simulate one thread block sorting `tile` (size must equal cfg.tile()) in
/// place.  `shm` must have cfg.tile() words and warp size cfg.w; its stats
/// are *not* reset (deltas are folded into `stats`).  Counts the coalesced
/// global load/store of the tile, all shared traffic, and the register
/// network's compare-exchanges.
void simulate_block_sort(gpusim::SharedMemory& shm, std::span<word> tile,
                         const SortConfig& cfg, gpusim::KernelStats& stats);

}  // namespace wcm::sort
