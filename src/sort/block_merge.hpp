#pragma once
// Warp-synchronous simulation of one block-level merge round — the code
// path the paper's worst-case construction attacks.  Both the block sort's
// intra-block rounds and the global pairwise rounds funnel through here.
//
// Execution model (mirrors the Thrust / Modern GPU CTA merge):
//   1. every thread runs a merge-path binary search in shared memory to
//      find its E-element quantile (two probe loads per iteration, replayed
//      warp-synchronously; lanes that finish early go inactive),
//   2. E lock-step merge iterations; at iteration s each thread loads the
//      element it consumes (its s-th smallest) from shared memory into
//      "registers" — this is the access stream Theorems 3 and 9 are about,
//   3. barrier, then each thread writes its E merged keys back to shared
//      memory at its output ranks (thread-contiguous stores).
//
// Control flow (which element each thread consumes) is decided from the
// true values, so the sort is functional; the accounting replays exactly
// the addresses a real warp would issue.

#include <span>
#include <vector>

#include "gpusim/shared_memory.hpp"
#include "gpusim/stats.hpp"
#include "mergepath/corank.hpp"
#include "util/math.hpp"

namespace wcm::sort {

using dmm::word;

/// One thread's slice of a block-level merge: half-open shared-memory
/// address ranges of its A and B segments plus its output base address.
struct ThreadMergeCtx {
  std::size_t a_begin = 0;
  std::size_t a_end = 0;
  std::size_t b_begin = 0;
  std::size_t b_end = 0;
  std::size_t out_begin = 0;

  [[nodiscard]] std::size_t elements() const noexcept {
    return (a_end - a_begin) + (b_end - b_begin);
  }
};

/// One thread's merge-path search task: find the co-rank of `diag` within
/// the merge of shared ranges [a_begin, a_end) x [b_begin, b_end).
struct ThreadSearchCtx {
  std::size_t a_begin = 0;
  std::size_t a_end = 0;
  std::size_t b_begin = 0;
  std::size_t b_end = 0;
  std::size_t diag = 0;
};

/// Simulate the merge-path searches of ctxs.size() consecutive threads
/// (grouped in warps of shm.warp_size(); a warp may span several merge
/// pairs, whose probes then share warp steps, as on real hardware).
/// Returns the per-thread co-rank and accounts every probe into `stats`
/// (both `shared` and `shared_search`).
[[nodiscard]] std::vector<mergepath::CoRank> simulate_block_search(
    gpusim::SharedMemory& shm, std::span<const ThreadSearchCtx> ctxs,
    gpusim::KernelStats& stats);

/// Simulate the lock-step merge of phase 2 plus the write-back of phase 3.
/// Every context must cover exactly E elements.  When `write_back` is true
/// the merged keys are stored to shared at ctx.out_begin + s (s = 0..E-1).
/// `realistic_refills` switches the accounting from the paper's
/// consumed-element model to the initial-heads + per-step refill stream of
/// real kernels (see SortConfig::realistic_refills).
/// Returns the merged keys of all threads concatenated in context order.
std::vector<word> simulate_block_merge(gpusim::SharedMemory& shm,
                                       std::span<const ThreadMergeCtx> ctxs,
                                       u32 E, bool write_back,
                                       gpusim::KernelStats& stats,
                                       bool realistic_refills = false);

}  // namespace wcm::sort
