#pragma once
// Software configuration of the GPU pairwise merge sort (paper Sec. II-A):
// E = elements per thread per merge round, b = threads per thread block,
// w = warp size (= number of shared-memory banks).  Presets mirror the
// parameters the paper reports for Thrust and Modern GPU.

#include <string>

#include "gpusim/device.hpp"
#include "gpusim/layout.hpp"
#include "util/math.hpp"

namespace wcm::gpusim {
class TraceRecorder;
}  // namespace wcm::gpusim

namespace wcm::sort {

struct SortConfig {
  u32 E = 15;  ///< elements per thread per merge round
  u32 b = 512; ///< threads per thread block (power of two, multiple of w)
  u32 w = 32;  ///< warp size == number of shared-memory banks
  /// Padding words inserted after every w logical words of shared memory
  /// (Dotsenko-style bank-conflict mitigation; 0 = the layout the paper
  /// attacks).
  u32 padding = 0;
  /// Shared-memory bank permutation (gpusim/layout.hpp).  The engines
  /// stage their tiles under this layout; xor/rotation are the memory-free
  /// defenses the certified shearsort engine relies on.
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  /// Merge-read accounting fidelity.  The paper's model charges one shared
  /// read per lock-step iteration: the *consumed* element (default).  Real
  /// kernels keep both list heads in registers: two initial loads, then a
  /// *refill* load of the consumed side each iteration — one access per
  /// step either way, shifted by one element.  The attack survives both
  /// countings (an aligned column's refills collide one bank over); the
  /// ablation bench quantifies the difference.
  bool realistic_refills = false;
  /// Optional shared-memory access-trace capture: when non-null, every
  /// engine attaches this recorder to its block-local SharedMemory, so the
  /// whole sort's access stream (with barrier and fill markers) lands in
  /// one Trace for `wcm::analyze` / `wcm-lint` (see docs/LINT.md).  Not
  /// part of the simulated machine; ignored by validate()/to_string().
  gpusim::TraceRecorder* trace_sink = nullptr;

  /// Elements per thread-block tile (bE).
  [[nodiscard]] std::size_t tile() const noexcept {
    return static_cast<std::size_t>(E) * b;
  }
  /// Shared-memory bytes one block allocates (bE 4-byte keys, plus the
  /// padding waste).
  [[nodiscard]] std::size_t shared_bytes() const noexcept {
    const std::size_t pad_words = tile() / w * padding;
    return (tile() + pad_words) * 4;
  }
  [[nodiscard]] u32 warps_per_block() const noexcept { return b / w; }

  /// Throws wcm::contract_error when the configuration is malformed.
  void validate() const;

  [[nodiscard]] std::string to_string() const;
};

/// Thrust's parameters for the given device, as described in Sec. IV-A:
/// E=15, b=512 for compute capability 5.x (Quadro M4000); the CUDA 10.1
/// default of E=17, b=256 (the cc 6.0 tuning) for newer devices such as the
/// RTX 2080 Ti.
[[nodiscard]] SortConfig thrust_params(const gpusim::Device& dev);

/// Modern GPU's parameters: E=15, b=128 for cc 5.x; for newer devices the
/// paper reuses the same two parameter sets as Thrust.
[[nodiscard]] SortConfig mgpu_params(const gpusim::Device& dev);

/// Named parameter sets used throughout the paper's evaluation.
[[nodiscard]] SortConfig params_15_512();
[[nodiscard]] SortConfig params_17_256();
[[nodiscard]] SortConfig params_15_128();

}  // namespace wcm::sort
