#include "sort/radix.hpp"

#include <algorithm>
#include <numeric>

#include "gpusim/shared_memory.hpp"
#include "sort/describe.hpp"
#include "sort/pairwise_sort.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"

namespace wcm::sort {

u32 radix_pass_count(u32 key_bits, u32 digit_bits) {
  WCM_EXPECTS(digit_bits >= 1 && digit_bits <= 16, "digit width 1..16");
  return static_cast<u32>(
      ceil_div(key_bits, digit_bits));
}

std::vector<word> radix_adversarial_input(std::size_t n) {
  // All keys equal, with the same magnitude a permutation of 0..n-1 would
  // have, so the pass count matches the uniform baseline and every
  // histogram update of every pass collides w ways.
  return std::vector<word>(n, n > 0 ? static_cast<word>(n - 1) : word{0});
}

SortReport radix_sort(std::span<const word> input, const SortConfig& cfg,
                      const gpusim::Device& dev, u32 digit_bits,
                      std::vector<word>* output) {
  cfg.validate();
  WCM_EXPECTS(digit_bits >= 1 && digit_bits <= 16, "digit width 1..16");
  WCM_EXPECTS(cfg.w == dev.warp_size, "config warp size must match device");
  const std::size_t tile = cfg.tile();
  const std::size_t n = input.size();
  WCM_EXPECTS(n > 0 && n % tile == 0,
              "input size must be a positive multiple of bE");

  word max_key = 0;
  for (const word k : input) {
    WCM_EXPECTS(k >= 0, "radix sort requires non-negative keys");
    max_key = std::max(max_key, k);
  }
  u32 key_bits = 1;
  while ((word{1} << key_bits) <= max_key && key_bits < 62) {
    ++key_bits;
  }
  const u32 passes = radix_pass_count(key_bits, digit_bits);
  const std::size_t bins = std::size_t{1} << digit_bits;

  const u32 b = cfg.b;
  const u32 w = cfg.w;
  // Shared layout per block: the tile's keys plus the histogram bins.
  const std::size_t shared_words = tile + bins;
  const std::size_t pad_words = shared_words / w * cfg.padding;
  const gpusim::LaunchConfig launch{n / tile, b, (shared_words + pad_words) * 4};
  const gpusim::Calibration cal =
      library_calibration(MergeSortLibrary::thrust);

  SortReport report;
  report.config = cfg;
  report.device = dev;
  report.n = n;

  std::vector<word> data(input.begin(), input.end());
  std::vector<word> buffer(n);
  gpusim::SharedMemory shm(
      gpusim::SharedLayout{w, cfg.padding, cfg.layout}, shared_words);
  shm.attach_trace(cfg.trace_sink);
  std::vector<gpusim::LaneRead> reads;
  std::vector<gpusim::LaneWrite> writes;

  WCM_SPAN("radix.sort");

  for (u32 pass = 0; pass < passes; ++pass) {
    WCM_SPAN("radix.pass");
    gpusim::KernelStats stats;
    const word shift = static_cast<word>(pass) * digit_bits;
    const word mask = static_cast<word>(bins - 1);
    const auto digit_of = [&](word key) {
      return static_cast<std::size_t>((key >> shift) & mask);
    };

    // Per-tile histograms (simulated with full conflict accounting) plus
    // the functional global counting.
    std::vector<std::size_t> global_count(bins, 0);
    for (std::size_t base = 0; base < n; base += tile) {
      shm.reset_stats();
      // Block boundary between consecutive simulated tiles.
      shm.barrier();
      shm.fill(std::span<const word>(data).subspan(base, tile));
      stats.global_transactions += tile / w;
      stats.global_requests += tile;
      // Zero the histogram (one warp pass over the bins).
      for (std::size_t bin0 = 0; bin0 < bins; bin0 += w) {
        writes.clear();
        for (u32 lane = 0; lane < w && bin0 + lane < bins; ++lane) {
          writes.push_back({lane, tile + bin0 + lane, 0});
        }
        shm.warp_write(writes);
      }
      // __syncthreads: the histogram updates read bins other lanes zeroed.
      shm.barrier();
      // Every key increments its bin: warp-wide read of the counters (keys
      // with equal digits broadcast the read but serialize the writes,
      // which the CREW model surfaces as conflicting distinct updates --
      // modeled as one read + one write per key with intra-warp collisions
      // resolved in log-style rounds: colliding lanes retry, exactly the
      // hardware's atomic behavior).
      // The read-modify-write update rounds model shared-memory atomics:
      // tag them so the race detector exempts atomic/atomic pairs on the
      // same bin (see docs/LINT.md).
      shm.set_atomic_section(true);
      for (std::size_t k0 = 0; k0 < tile; k0 += w) {
        // Group this warp's keys by bin; each distinct bin gets one update
        // round per colliding lane (serialized atomics).
        std::vector<std::pair<std::size_t, u32>> lane_bins;  // (bin, lane)
        for (u32 lane = 0; lane < w && k0 + lane < tile; ++lane) {
          lane_bins.emplace_back(digit_of(data[base + k0 + lane]), lane);
        }
        std::sort(lane_bins.begin(), lane_bins.end());
        // Round-robin: in each round, one lane per distinct bin performs
        // its read-modify-write; lanes of the same bin go in later rounds.
        while (!lane_bins.empty()) {
          reads.clear();
          writes.clear();
          std::vector<std::pair<std::size_t, u32>> rest;
          std::size_t prev_bin = static_cast<std::size_t>(-1);
          for (const auto& [bin, lane] : lane_bins) {
            if (bin == prev_bin) {
              rest.emplace_back(bin, lane);
              continue;
            }
            prev_bin = bin;
            reads.push_back({lane, tile + bin});
            writes.push_back({lane, tile + bin, shm.peek(tile + bin) + 1});
          }
          shm.warp_read(reads);
          shm.warp_write(writes);
          lane_bins = std::move(rest);
          stats.warp_merge_steps += 1;
        }
      }
      shm.set_atomic_section(false);
      for (std::size_t i = 0; i < tile; ++i) {
        ++global_count[digit_of(data[base + i])];
      }
      stats.shared += shm.stats();
      stats.blocks_launched += 1;
      stats.elements_processed += tile;
    }

    // Global digit offsets (device-wide scan of the histograms): charged as
    // one coalesced pass over the per-tile histograms.
    std::vector<std::size_t> offset(bins, 0);
    std::exclusive_scan(global_count.begin(), global_count.end(),
                        offset.begin(), std::size_t{0});
    stats.global_transactions += (n / tile) * ceil_div(bins, w) * 2;

    // Stable scatter: every key moves to offset[digit] (uncoalesced
    // writes: charge one transaction per key segment change, i.e. per key
    // in the worst case, bins/w-coalesced typically — charged per key /
    // (w / bins capped)).
    for (std::size_t i = 0; i < n; ++i) {
      buffer[offset[digit_of(data[i])]++] = data[i];
    }
    data.swap(buffer);
    stats.global_requests += 2 * n;
    const std::size_t scatter_eff =
        std::max<std::size_t>(1, w / std::min<std::size_t>(bins, w));
    stats.global_transactions += n / scatter_eff + n / w;

    gpusim::RoundStats round;
    round.name = "radix pass " + std::to_string(pass);
    round.kernel = stats;
    round.modeled_seconds =
        gpusim::estimate_kernel_time(dev, launch, stats, cal).seconds;
    gpusim::record_round_telemetry("radix", round.name, cfg.E, cfg.padding,
                                   stats);
    report.totals += stats;
    report.total_time += gpusim::estimate_kernel_time(dev, launch, stats, cal);
    report.rounds.push_back(std::move(round));
  }

  WCM_ENSURES(std::is_sorted(data.begin(), data.end()),
              "radix sort must sort");
  if (output != nullptr) {
    *output = std::move(data);
  }
  return report;
}

gpusim::ir::KernelDesc describe_radix(u32 w, u32 b, u32 pad, u32 digit_bits) {
  namespace ir = gpusim::ir;
  WCM_EXPECTS(digit_bits >= 1 && digit_bits <= 16, "digit width 1..16");
  WCM_EXPECTS(w > 0 && b >= w && is_pow2(b),
              "block size must be a power of two no smaller than the warp");
  ir::KernelDesc d;
  d.kernel = "radix";
  d.w = w;
  d.b = b;
  d.pad = pad;
  const u32 bins = u32{1} << digit_bits;
  // The tile's b*E keys occupy [0, bE); the histogram lives at
  // [bE, bE + bins).
  const int e = d.add_symbol("E", ir::SymRole::parameter, 3,
                             static_cast<i64>(w) - 1, 2, 1);
  d.words = ir::LinForm::sym(e, static_cast<i64>(b)) +
            ir::LinForm::constant(static_cast<i64>(bins));
  const ir::LinForm hist_lo = ir::LinForm::sym(e, static_cast<i64>(b));
  const ir::LinForm hist_hi =
      ir::LinForm::sym(e, static_cast<i64>(b)) +
      ir::LinForm::constant(static_cast<i64>(bins) - 1);

  d.groups.push_back(ir::barrier_group("pass entry"));
  d.groups.push_back(ir::with_region(
      ir::fill_group("tile keys", "1 per pass"), ir::LinForm::constant(0),
      ir::LinForm::sym(e, static_cast<i64>(b)) - ir::LinForm::constant(1)));
  if (bins >= w) {
    // Zeroing sweeps the histogram in w-wide chunks; the chunk base bin0
    // steps by w, so it is itself ≡ 0 (mod w) and uniform across lanes.
    // The last chunk is partial when w does not divide bins.
    const i64 last_chunk = static_cast<i64>(w) *
                           ((static_cast<i64>(bins) - 1) /
                            static_cast<i64>(w));
    const int bin0 = d.add_symbol("bin0", ir::SymRole::parameter, 0,
                                  last_chunk, w, 0);
    d.groups.push_back(ir::affine_group(
        "histogram zero", ir::GroupKind::write, w,
        ir::LinForm::sym(e, static_cast<i64>(b)) + ir::LinForm::sym(bin0),
        ir::LinForm::constant(1), "bins/w chunks x passes"));
    d.groups.back().masked = bins % w != 0;
  } else {
    d.groups.push_back(ir::affine_group(
        "histogram zero", ir::GroupKind::write, bins,
        ir::LinForm::sym(e, static_cast<i64>(b)), ir::LinForm::constant(1),
        "1 step x passes"));
  }
  d.groups.push_back(ir::barrier_group("after zeroing"));
  // Atomic bin updates: each conflict-resolution round serves lanes with
  // pairwise-distinct bins, all inside the bins-wide histogram region.
  d.groups.push_back(ir::with_region(
      ir::window_group(
          "histogram update load", ir::GroupKind::read, std::min(w, bins),
          ir::LinForm::constant(static_cast<i64>(bins)),
          ir::LinForm::constant(1),
          "<= w rounds x tile/w chunks x passes", /*atomic=*/true),
      hist_lo, hist_hi));
  d.groups.push_back(ir::with_region(
      ir::window_group(
          "histogram update store", ir::GroupKind::write, std::min(w, bins),
          ir::LinForm::constant(static_cast<i64>(bins)),
          ir::LinForm::constant(1),
          "<= w rounds x tile/w chunks x passes", /*atomic=*/true),
      hist_lo, hist_hi));
  return d;
}

}  // namespace wcm::sort
