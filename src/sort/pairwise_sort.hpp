#pragma once
// The GPU pairwise merge sort (paper Sec. II-A), simulated end to end:
// block sort of bE-element tiles, then ceil(log2(N / bE)) global pairwise
// merge rounds.  In each global round, pairs of sorted runs are merged by
// one thread block per bE output elements: the block finds its quantile via
// mutual binary search in global memory, stages it in shared memory, runs
// one merge-path round (b threads, E elements each — the access pattern the
// worst-case construction attacks), and stores the tile back coalesced.
//
// This models both the Thrust and the Modern GPU implementation; they run
// the same algorithm with different (E, b) tunings and constant factors
// (see MergeSortLibrary).

#include <span>
#include <vector>

#include "sort/report.hpp"

namespace wcm::sort {

/// Library flavor: same algorithm, different tuning defaults and
/// calibration constants.
enum class MergeSortLibrary { thrust, mgpu };

[[nodiscard]] const char* to_string(MergeSortLibrary lib) noexcept;

/// Calibration constants for a library (documented in EXPERIMENTS.md).
[[nodiscard]] gpusim::Calibration library_calibration(MergeSortLibrary lib);

/// Simulate the full sort of `input` (size must be a positive multiple of
/// cfg.tile()).  Returns the report; `output`, when non-null, receives the
/// sorted keys.
[[nodiscard]] SortReport pairwise_merge_sort(
    std::span<const word> input, const SortConfig& cfg,
    const gpusim::Device& dev, MergeSortLibrary lib = MergeSortLibrary::thrust,
    std::vector<word>* output = nullptr);

/// Re-derive modeled times for another device / library from an existing
/// report's event counters (the counters are device-independent, so one
/// simulation can be priced for several targets).
[[nodiscard]] SortReport recost(const SortReport& report,
                                const gpusim::Device& dev,
                                MergeSortLibrary lib);

/// Sort an input of arbitrary size: pads to the next multiple of bE with
/// +infinity sentinels (what the real implementations' edge-tile handling
/// amounts to), sorts, and strips the sentinels.  The report's `n` is the
/// padded size; throughput() relative to the padded size.
[[nodiscard]] SortReport pairwise_merge_sort_any(
    std::span<const word> input, const SortConfig& cfg,
    const gpusim::Device& dev, MergeSortLibrary lib = MergeSortLibrary::thrust,
    std::vector<word>* output = nullptr);

}  // namespace wcm::sort
