#include "serve/tenant_cache.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "runtime/cache.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"

namespace wcm::serve {

namespace {

constexpr char kMagic[4] = {'W', 'C', 'M', 'S'};

template <typename T>
void write_pod(std::ostream& os, u64& h, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  h = fnv1a(h, &v, sizeof(v));
}

template <typename T>
T read_pod(std::istream& is, u64& h, const char* what) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  WCM_CHECK_IO(static_cast<bool>(is), std::string("truncated WCMS file (") +
                                          what + ")");
  h = fnv1a(h, &v, sizeof(v));
  return v;
}

std::string read_bytes(std::istream& is, u64& h, u64 len, const char* what) {
  std::string s(static_cast<std::size_t>(len), '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  WCM_CHECK_IO(static_cast<bool>(is), std::string("truncated WCMS file (") +
                                          what + ")");
  h = fnv1a(h, s.data(), s.size());
  return s;
}

void count(const char* name, const std::string& tenant) {
  if (telemetry::enabled()) {
    telemetry::registry().counter(name, {{"tenant", tenant}}).add(1);
  }
}

}  // namespace

TenantCache::TenantCache()
    : salt_(runtime::code_version_salt()),
      max_per_tenant_(runtime::cache_max_from_env()) {}

u64 TenantCache::key_of(const std::string& canonical) const noexcept {
  u64 h = fnv1a(fnv_offset_basis, &salt_, sizeof(salt_));
  return fnv1a(h, canonical.data(), canonical.size());
}

void TenantCache::evict_over_cap(const std::string& tenant, Shard& shard) {
  if (max_per_tenant_ == 0) {
    return;
  }
  while (shard.entries.size() > max_per_tenant_ && !shard.lru.empty()) {
    shard.entries.erase(shard.lru.pop_coldest());
    count("serve.cache.evict", tenant);
  }
}

std::optional<std::string> TenantCache::lookup(const std::string& tenant,
                                               u64 key) {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto shard_it = shards_.find(tenant);
  const auto* shard = shard_it == shards_.end() ? nullptr : &shard_it->second;
  const auto it =
      shard == nullptr ? std::map<u64, std::string>::const_iterator{}
                       : shard->entries.find(key);
  if (shard == nullptr || it == shard->entries.end()) {
    count("serve.cache.miss", tenant);
    return std::nullopt;
  }
  count("serve.cache.hit", tenant);
  shard_it->second.lru.touch(key);
  return it->second;
}

void TenantCache::insert(const std::string& tenant, u64 key,
                         std::string result) {
  const std::lock_guard<std::mutex> lock(*mu_);
  Shard& shard = shards_[tenant];
  const auto [it, admitted] =
      shard.entries.insert_or_assign(key, std::move(result));
  if (!admitted) {
    shard.lru.touch(key);  // shared single-flight result re-inserted
    return;
  }
  shard.lru.insert(key);
  count("serve.cache.admit", tenant);
  evict_over_cap(tenant, shard);
}

std::size_t TenantCache::size(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(*mu_);
  const auto it = shards_.find(tenant);
  return it == shards_.end() ? 0 : it->second.entries.size();
}

std::size_t TenantCache::total_size() const {
  const std::lock_guard<std::mutex> lock(*mu_);
  std::size_t total = 0;
  for (const auto& [tenant, shard] : shards_) {
    total += shard.entries.size();
  }
  return total;
}

TenantCache TenantCache::load(const std::filesystem::path& path, u64 salt) {
  WCM_SPAN("serve.cache.load");
  TenantCache cache(salt, runtime::cache_max_from_env());
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return cache;  // cold start
  }
  std::ifstream is(path, std::ios::binary);
  WCM_FAILPOINT("runtime.cache.load", io_error,
                "injected cache read failure");
  WCM_CHECK_IO(is.is_open(), "cannot open cache file: " + path.string());

  u64 h = fnv_offset_basis;
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  WCM_CHECK_IO(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
               "not a WCMS file: " + path.string());
  h = fnv1a(h, magic, sizeof(magic));

  const auto version = read_pod<std::uint32_t>(is, h, "version");
  WCM_CHECK_IO(version == wcms_version,
               "unsupported WCMS version " + std::to_string(version) + ": " +
                   path.string());
  const u64 file_salt = read_pod<u64>(is, h, "salt");
  const u64 record_count = read_pod<u64>(is, h, "count");
  WCM_CHECK_IO(record_count <= max_wcms_records,
               "WCMS record count " + std::to_string(record_count) +
                   " exceeds the format cap (corrupt header?): " +
                   path.string());

  std::map<std::string, Shard> shards;
  for (u64 i = 0; i < record_count; ++i) {
    const u64 tenant_len = read_pod<u64>(is, h, "tenant length");
    WCM_CHECK_IO(tenant_len >= 1 && tenant_len <= 64,
                 "WCMS tenant length out of range (corrupt record?): " +
                     path.string());
    const std::string tenant = read_bytes(is, h, tenant_len, "tenant name");
    const u64 key = read_pod<u64>(is, h, "record key");
    const u64 value_len = read_pod<u64>(is, h, "value length");
    WCM_CHECK_IO(value_len <= max_wcms_value_bytes,
                 "WCMS value length exceeds the format cap (corrupt "
                 "record?): " +
                     path.string());
    shards[tenant].entries[key] = read_bytes(is, h, value_len, "value");
  }

  const u64 expected = h;  // checksum covers everything before itself
  u64 ignored = fnv_offset_basis;
  const u64 stored = read_pod<u64>(is, ignored, "checksum");
  WCM_CHECK_IO(stored == expected,
               "WCMS checksum mismatch (corrupt file): " + path.string());
  char extra = 0;
  is.read(&extra, 1);
  WCM_CHECK_IO(is.eof(), "trailing bytes after WCMS checksum: " +
                             path.string());

  if (file_salt != salt) {
    if (telemetry::enabled()) {
      telemetry::registry().counter("serve.cache.salt_mismatch").add(1);
    }
    return cache;  // salt changed -> every entry is stale; start cold
  }
  cache.shards_ = std::move(shards);
  // Recency for loaded entries is unknowable; seed it in key order (the
  // file's order) and let the bound trim deterministically from low keys.
  for (auto& [tenant, shard] : cache.shards_) {
    for (const auto& [key, value] : shard.entries) {
      shard.lru.insert(key);
    }
    cache.evict_over_cap(tenant, shard);
  }
  return cache;
}

void TenantCache::store(const std::filesystem::path& path) const {
  WCM_SPAN("serve.cache.store");
  const std::lock_guard<std::mutex> lock(*mu_);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  WCM_FAILPOINT("runtime.cache.store", io_error,
                "injected cache write failure");
  WCM_CHECK_IO(os.is_open(), "cannot open cache file for writing: " +
                                 path.string());
  u64 h = fnv_offset_basis;
  os.write(kMagic, sizeof(kMagic));
  h = fnv1a(h, kMagic, sizeof(kMagic));
  write_pod(os, h, wcms_version);
  write_pod(os, h, salt_);
  u64 record_count = 0;
  for (const auto& [tenant, shard] : shards_) {
    record_count += shard.entries.size();
  }
  write_pod(os, h, record_count);
  for (const auto& [tenant, shard] : shards_) {
    for (const auto& [key, value] : shard.entries) {
      const u64 tenant_len = tenant.size();
      write_pod(os, h, tenant_len);
      os.write(tenant.data(), static_cast<std::streamsize>(tenant.size()));
      h = fnv1a(h, tenant.data(), tenant.size());
      write_pod(os, h, key);
      const u64 value_len = value.size();
      write_pod(os, h, value_len);
      os.write(value.data(), static_cast<std::streamsize>(value.size()));
      h = fnv1a(h, value.data(), value.size());
    }
  }
  const u64 checksum = h;
  os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  WCM_CHECK_IO(static_cast<bool>(os), "cache write failed: " + path.string());
}

}  // namespace wcm::serve
