#pragma once
// wcmd: the long-running adversarial-input daemon (docs/SERVE.md).
//
// One Server owns the whole request path:
//
//   accept thread ── per-connection reader threads ── admission queue ──
//   dispatcher thread (batches leaders into scheduler job graphs) ──
//   single-flight completion fan-out ── per-connection writers
//
// Requests are parsed and answered from the multi-tenant response cache on
// the connection thread; misses join a single-flight keyed by the
// canonical request (identical concurrent requests share one computation),
// and only flight leaders occupy admission-queue slots.  A full queue or
// connection limit sheds load with a typed `overloaded` response instead
// of queueing unboundedly, and `deadline_ms` bounds how long a request may
// wait in the queue before it is answered `deadline` instead of executed.
//
// Graceful drain (SIGINT/SIGTERM or the `drain` op): stop accepting,
// stop reading, finish every request already read, flush the WCMS cache,
// then verify the zero-drop invariant — every request line read got
// exactly one response write attempt.  In-flight campaigns are cancelled
// through the drain CancelSource and journal their completed prefix, so
// resubmitting the identical request resumes rather than recomputes.

#include <iosfwd>
#include <memory>

#include "runtime/scheduler.hpp"
#include "serve/handlers.hpp"
#include "util/math.hpp"

namespace wcm::serve {

/// Drain-time accounting; serve() fills it and run_server() prints it.
struct ServerStats {
  u64 accepted = 0;   ///< connections accepted
  u64 requests = 0;   ///< request lines read (the zero-drop denominator)
  u64 responses = 0;  ///< response writes attempted (the numerator)
  u64 shed = 0;       ///< requests/connections refused with `overloaded`
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and serve until a drain completes; flushes durable
  /// state and returns the final stats.  Throws wcm::io_error when the
  /// socket cannot be bound (or is already served by a live daemon).
  const ServerStats& serve();

  /// Request a graceful drain.  Async-signal-safe (one atomic store).
  void request_drain() noexcept;

  /// The drain flag, for wiring into signal handlers and campaigns.
  [[nodiscard]] runtime::CancelSource& drain_source() noexcept;

  [[nodiscard]] const ServerStats& stats() const noexcept;

  /// Startup/drain log lines (default std::cerr; null silences).
  void set_log(std::ostream* log) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shared main() body of wcmd and `wcmgen serve`: install SIGINT/SIGTERM
/// drain handlers (restored on return), serve, print the drain summary,
/// and map the zero-drop invariant onto the exit code (0 when every read
/// request got a response attempt, 5 otherwise).  Exceptions propagate
/// for the caller's taxonomy mapping.
int run_server(Server& server, bool quiet);

namespace detail {
// The daemon's failpoint sites, as free functions so the fault-injection
// coverage test (tests/test_fault_injection.cpp) can drive each one
// directly; the server calls them from the instrumented paths.
void accept_failpoint();    ///< "serve.accept": throws wcm::io_error
void read_failpoint();      ///< "serve.read": throws wcm::io_error
void write_failpoint();     ///< "serve.write": throws wcm::io_error
void dispatch_failpoint();  ///< "serve.dispatch": throws simulation_error
/// "serve.trace.inject": throws simulation_error.  A triggered failure
/// degrades the request to "no trace context" (counted on
/// `serve.trace.drop`) — it must never cost a response.
void trace_inject_failpoint();
}  // namespace detail

}  // namespace wcm::serve
