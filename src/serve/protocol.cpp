#include "serve/protocol.hpp"

#include <limits>
#include <sstream>
#include <vector>

#include "gpusim/layout.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_context.hpp"
#include "util/error.hpp"

namespace wcm::serve {

const char* to_string(ErrorType type) noexcept {
  switch (type) {
    case ErrorType::parse:
      return "parse";
    case ErrorType::unknown_op:
      return "unknown_op";
    case ErrorType::config:
      return "config";
    case ErrorType::io:
      return "io";
    case ErrorType::too_large:
      return "too_large";
    case ErrorType::overloaded:
      return "overloaded";
    case ErrorType::deadline:
      return "deadline";
    case ErrorType::interrupted:
      return "interrupted";
    case ErrorType::internal:
      return "internal";
  }
  return "?";
}

bool is_batched_op(const std::string& op) {
  return op == "generate" || op == "prove" || op == "certify" ||
         op == "campaign";
}

namespace {

/// Reject params outside `allowed` so a typo never silently becomes a
/// default (same contract as wcmgen's require_known).
void require_known_params(const std::string& op, const json::Object& params,
                          const std::vector<const char*>& allowed) {
  for (const auto& [key, value] : params) {
    bool ok = false;
    for (const char* a : allowed) {
      ok = ok || key == a;
    }
    if (!ok) {
      std::string pretty;
      for (const char* a : allowed) {
        pretty += pretty.empty() ? "" : ", ";
        pretty += a;
      }
      throw parse_error("unknown param '" + key + "' for op '" + op +
                        "' (valid: " + pretty + ")");
    }
  }
}

/// Comma-joined canonical form of a u32-list param (e.g. certify's bs).
std::string join_u32_list(const std::vector<u32>& values) {
  std::string out;
  for (const u32 v : values) {
    out += out.empty() ? "" : ",";
    out += std::to_string(v);
  }
  return out;
}

/// Validate a layout name by round-tripping it through the gpusim parser
/// (throws wcm::parse_error on garbage), returning the canonical spelling.
std::string canonical_layout(const std::string& name) {
  return gpusim::to_string(gpusim::parse_layout_kind(name));
}

std::string canonical_strategy(const std::string& name) {
  if (name != "front-to-back" && name != "back-to-front" &&
      name != "outside-in") {
    throw parse_error("unknown value '" + name +
                      "' for param 'strategy' (valid: front-to-back, "
                      "back-to-front, outside-in)");
  }
  return name;
}

std::string canonical_generate(const json::Object& p) {
  require_known_params("generate", p,
                       {"E", "b", "w", "padding", "layout", "k", "seed",
                        "strategy", "intra"});
  constexpr u64 u32_max = std::numeric_limits<std::uint32_t>::max();
  std::ostringstream os;
  os << "generate|E=" << param_u64(p, "E", 15, u32_max)
     << "|b=" << param_u64(p, "b", 512, u32_max)
     << "|w=" << param_u64(p, "w", 32, u32_max)
     << "|pad=" << param_u64(p, "padding", 0, u32_max)
     << "|layout=" << canonical_layout(param_string(p, "layout", "linear"))
     << "|k=" << param_u64(p, "k", 4, 40)
     << "|seed=" << param_u64(p, "seed", 1)
     << "|strategy="
     << canonical_strategy(param_string(p, "strategy", "front-to-back"))
     << "|intra=" << (param_bool(p, "intra", false) ? 1 : 0);
  return os.str();
}

std::string canonical_prove(const json::Object& p) {
  require_known_params("prove", p,
                       {"engine", "w", "b", "pad", "layout", "E_min", "E_max",
                        "any_E", "ways", "digit_bits"});
  constexpr u64 u32_max = std::numeric_limits<std::uint32_t>::max();
  std::ostringstream os;
  os << "prove|engine=" << param_string(p, "engine", "all")
     << "|w=" << param_u64(p, "w", 32, u32_max)
     << "|b=" << param_u64(p, "b", 64, u32_max)
     << "|pad=" << param_u64(p, "pad", 0, u32_max)
     << "|layout=" << canonical_layout(param_string(p, "layout", "linear"))
     << "|E_min=" << param_u64(p, "E_min", 3, u32_max)
     << "|E_max=" << param_u64(p, "E_max", 0, u32_max)
     << "|any_E=" << (param_bool(p, "any_E", false) ? 1 : 0)
     << "|ways=" << param_u64(p, "ways", 4, u32_max)
     << "|digit_bits=" << param_u64(p, "digit_bits", 4, u32_max);
  return os.str();
}

std::string canonical_certify(const json::Object& p) {
  require_known_params("certify", p,
                       {"engine", "w", "bs", "pads", "layout", "E_min",
                        "E_max", "any_E", "ways", "digit_bits"});
  constexpr u64 u32_max = std::numeric_limits<std::uint32_t>::max();
  std::ostringstream os;
  os << "certify|engine=" << param_string(p, "engine", "shearsort")
     << "|w=" << param_u64(p, "w", 32, u32_max)
     << "|bs=" << join_u32_list(param_u32_list(p, "bs", {64}))
     << "|pads=" << join_u32_list(param_u32_list(p, "pads", {0}))
     << "|layout=" << canonical_layout(param_string(p, "layout", "linear"))
     << "|E_min=" << param_u64(p, "E_min", 3, u32_max)
     << "|E_max=" << param_u64(p, "E_max", 0, u32_max)
     << "|any_E=" << (param_bool(p, "any_E", false) ? 1 : 0)
     << "|ways=" << param_u64(p, "ways", 4, u32_max)
     << "|digit_bits=" << param_u64(p, "digit_bits", 4, u32_max);
  return os.str();
}

std::string canonical_campaign(const json::Object& p) {
  require_known_params("campaign", p, {"spec"});
  const auto it = p.find("spec");
  if (it == p.end() || !it->second.is_object()) {
    throw parse_error("op 'campaign' requires an object param 'spec' "
                      "(the embedded grid spec, docs/RUNTIME.md)");
  }
  // Re-serializing the spec sorts its keys, so wire field order cannot
  // split identical campaigns across cache slots.
  return "campaign|" + json::to_text(it->second);
}

/// Count one malformed trace field.  Tracing observes requests — a typo in
/// a correlation id must surface on a counter, never as a refused request.
void count_invalid_trace() {
  if (telemetry::enabled()) {
    telemetry::registry().counter("serve.trace.invalid").add(1);
  }
}

/// Tolerant decode of the optional "trace" request field: an object whose
/// `trace_id` / `parent_span_id` subfields are 1..16-digit hex strings.
/// Unknown subfields are ignored (a newer client may send more); any
/// corrupt value — wrong type, non-hex, non-object trace — degrades that
/// id to absent and bumps `serve.trace.invalid`.  Never throws.
void parse_trace_field(const json::Value& value, Request& req) {
  if (!value.is_object()) {
    count_invalid_trace();
    return;
  }
  for (const auto& [key, sub] : value.as_object()) {
    u64* target = nullptr;
    if (key == "trace_id") {
      target = &req.trace_id;
    } else if (key == "parent_span_id") {
      target = &req.parent_span_id;
    } else {
      continue;
    }
    u64 parsed = 0;
    if (sub.is_string() &&
        telemetry::parse_trace_hex(sub.as_string(), parsed)) {
      *target = parsed;
    } else {
      count_invalid_trace();
    }
  }
}

/// The metrics op accepts an optional exposition format; folding it into
/// the canonical keeps "metrics" and "metrics|format=prometheus" as
/// distinct inline results (admin ops bypass the cache, but the canonical
/// still names the work in the event log and error messages).
std::string canonical_metrics(const json::Object& p) {
  require_known_params("metrics", p, {"format"});
  const std::string format = param_string(p, "format", "json");
  if (format != "json" && format != "text" && format != "prometheus") {
    throw parse_error("unknown value '" + format +
                      "' for param 'format' (valid: json, prometheus, "
                      "text)");
  }
  return "metrics|format=" + format;
}

}  // namespace

Request parse_request(const std::string& line) {
  const json::Value doc = json::parse(line);
  if (!doc.is_object()) {
    throw parse_error("request must be one JSON object per line");
  }
  const json::Object& fields = doc.as_object();
  for (const auto& [key, value] : fields) {
    if (key != "op" && key != "id" && key != "tenant" &&
        key != "deadline_ms" && key != "params" && key != "trace") {
      throw parse_error(
          "unknown request field '" + key +
          "' (valid: deadline_ms, id, op, params, tenant, trace)");
    }
  }
  Request req;
  const auto op = fields.find("op");
  if (op == fields.end()) {
    throw parse_error("request is missing the required field 'op'");
  }
  req.op = op->second.as_string();
  if (const auto it = fields.find("id"); it != fields.end()) {
    req.id = it->second.as_string();
  }
  if (const auto it = fields.find("tenant"); it != fields.end()) {
    req.tenant = it->second.as_string();
    if (req.tenant.empty() || req.tenant.size() > 64) {
      throw parse_error("field 'tenant' must be 1..64 characters");
    }
  }
  if (const auto it = fields.find("deadline_ms"); it != fields.end()) {
    // Cap at one hour: a larger budget than any operation is a typo.
    req.deadline_ms = it->second.as_u64(3'600'000);
  }
  if (const auto it = fields.find("params"); it != fields.end()) {
    req.params = it->second.as_object();
  }
  if (const auto it = fields.find("trace"); it != fields.end()) {
    parse_trace_field(it->second, req);
  }
  return req;
}

std::string canonical_request(const Request& req) {
  if (req.op == "generate") {
    return canonical_generate(req.params);
  }
  if (req.op == "prove") {
    return canonical_prove(req.params);
  }
  if (req.op == "certify") {
    return canonical_certify(req.params);
  }
  if (req.op == "campaign") {
    return canonical_campaign(req.params);
  }
  if (req.op == "metrics") {
    return canonical_metrics(req.params);
  }
  // Remaining admin ops take no params; their canonical is the op name.
  require_known_params(req.op, req.params, {});
  return req.op;
}

std::string ok_response(const std::string& id,
                        const std::string& result_json) {
  std::ostringstream os;
  os << "{\"id\":";
  json::write_string(os, id);
  os << ",\"ok\":true,\"result\":" << result_json << "}";
  return os.str();
}

std::string error_response(const std::string& id, ErrorType type,
                           const std::string& message) {
  std::ostringstream os;
  os << "{\"error\":{\"message\":";
  json::write_string(os, message);
  os << ",\"type\":\"" << to_string(type) << "\"},\"id\":";
  json::write_string(os, id);
  os << ",\"ok\":false}";
  return os.str();
}

u64 param_u64(const json::Object& params, const char* name, u64 fallback,
              u64 max) {
  const auto it = params.find(name);
  if (it == params.end()) {
    return fallback;
  }
  try {
    return it->second.as_u64(max);
  } catch (const parse_error& e) {
    throw parse_error(std::string("param '") + name + "': " + e.what());
  }
}

bool param_bool(const json::Object& params, const char* name, bool fallback) {
  const auto it = params.find(name);
  if (it == params.end()) {
    return fallback;
  }
  try {
    return it->second.as_bool();
  } catch (const parse_error& e) {
    throw parse_error(std::string("param '") + name + "': " + e.what());
  }
}

std::string param_string(const json::Object& params, const char* name,
                         const std::string& fallback) {
  const auto it = params.find(name);
  if (it == params.end()) {
    return fallback;
  }
  try {
    return it->second.as_string();
  } catch (const parse_error& e) {
    throw parse_error(std::string("param '") + name + "': " + e.what());
  }
}

std::vector<u32> param_u32_list(const json::Object& params, const char* name,
                                std::vector<u32> fallback) {
  const auto it = params.find(name);
  if (it == params.end()) {
    return fallback;
  }
  try {
    const json::Array& items = it->second.as_array();
    if (items.empty()) {
      throw parse_error("list must not be empty");
    }
    std::vector<u32> out;
    out.reserve(items.size());
    for (const json::Value& v : items) {
      out.push_back(static_cast<u32>(
          v.as_u64(std::numeric_limits<std::uint32_t>::max())));
    }
    return out;
  } catch (const parse_error& e) {
    throw parse_error(std::string("param '") + name + "': " + e.what());
  }
}

}  // namespace wcm::serve
