#pragma once
// Operation handlers of the wcmd daemon: map one validated request onto
// the library (core/generator, analyze/symbolic, runtime/campaign,
// telemetry) and render the result as one line of strict JSON.
//
// Handlers are pure with respect to the wire: the rendered result never
// contains a volatile field (no wall-clock times, no cache/computed
// counts), so the response to a given canonical request is byte-identical
// however it was produced — that is the substrate of the serve_ci
// cold/warm byte-compare.  Volatile facts go to telemetry counters
// (serve.campaign.* etc.) instead.

#include <string>

#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/math.hpp"

namespace wcm::runtime {
class CancelSource;
}  // namespace wcm::runtime

namespace wcm::serve {

/// Daemon configuration (CLI flags of wcmd / `wcmgen serve`).
struct ServerConfig {
  /// Unix-domain socket: a filesystem path, or `@name` for the Linux
  /// abstract namespace (no file on disk, vanishes with the process).
  std::string socket = "@wcmd";
  /// Durable state directory: the WCMS response cache plus one WCMC cache
  /// and WCMJ journal per distinct campaign request — what makes a killed
  /// campaign resumable by resubmitting the identical request.  Empty =
  /// fully in-memory (nothing survives the process).
  std::string data_dir;
  u32 threads = 0;  ///< scheduler workers; 0 = WCM_THREADS, else 1
  std::size_t queue_max = 256;       ///< admission queue bound (then shed)
  std::size_t batch_max = 16;        ///< max requests per scheduler batch
  std::size_t max_connections = 64;  ///< concurrent clients (then shed)
};

/// Thrown when a drain cancels an in-flight campaign: the journal under
/// data_dir holds the completed prefix, so resubmitting the identical
/// request resumes instead of recomputing (ErrorType::interrupted).
class interrupted_error : public error {
 public:
  explicit interrupted_error(const std::string& what)
      : error(errc::simulation_invariant, what) {}
};

/// Execute one batched request (generate / prove / certify / campaign) or
/// an inline admin render (metrics / trace).  Returns the result as one
/// line of strict JSON; throws the wcm error taxonomy (plus
/// interrupted_error) on failure.  `drain` may be null.
[[nodiscard]] std::string execute(const Request& req, const ServerConfig& cfg,
                                  runtime::CancelSource* drain);

/// Map a caught handler exception onto the wire error taxonomy.
[[nodiscard]] ErrorType error_type_of(const std::exception& e) noexcept;

}  // namespace wcm::serve
