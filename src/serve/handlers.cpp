#include "serve/handlers.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <sstream>
#include <vector>

#include "analyze/symbolic/certify.hpp"
#include "analyze/symbolic/prove.hpp"
#include "core/generator.hpp"
#include "gpusim/layout.hpp"
#include "runtime/campaign.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "workload/inputs.hpp"
#include "workload/inversions.hpp"

namespace wcm::serve {

namespace {

constexpr u64 u32_max = std::numeric_limits<std::uint32_t>::max();

/// Re-serialize a rendered JSON document as one sorted-key line, so any
/// library renderer (pretty-printed or not) can be spliced into a
/// line-delimited response without embedding a raw newline.
std::string as_one_line(const std::string& json_text) {
  return json::to_text(json::parse(json_text));
}

std::string hex_u64(u64 v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

core::AlignmentStrategy strategy_from(const std::string& name) {
  if (name == "back-to-front") {
    return core::AlignmentStrategy::back_to_front;
  }
  if (name == "outside-in") {
    return core::AlignmentStrategy::outside_in;
  }
  return core::AlignmentStrategy::front_to_back;  // canonical default
}

std::string run_generate(const json::Object& p) {
  WCM_SPAN("serve.generate");
  sort::SortConfig cfg;
  cfg.E = static_cast<u32>(param_u64(p, "E", 15, u32_max));
  cfg.b = static_cast<u32>(param_u64(p, "b", 512, u32_max));
  cfg.w = static_cast<u32>(param_u64(p, "w", 32, u32_max));
  cfg.padding = static_cast<u32>(param_u64(p, "padding", 0, u32_max));
  cfg.layout = gpusim::parse_layout_kind(param_string(p, "layout", "linear"));
  cfg.validate();
  const u32 k = static_cast<u32>(param_u64(p, "k", 4, 40));
  const std::size_t n = cfg.tile() << k;

  core::AttackOptions opts;
  opts.tile_shuffle_seed = param_u64(p, "seed", 1);
  opts.small_e_strategy =
      strategy_from(param_string(p, "strategy", "front-to-back"));
  opts.attack_intra_block = param_bool(p, "intra", false);
  const auto input = core::worst_case_input(n, cfg, opts);

  json::Object result;
  result.emplace("digest",
                 json::Value(hex_u64(fnv1a(
                     fnv_offset_basis, input.data(),
                     input.size() * sizeof(input[0])))));
  json::Array first;
  for (std::size_t i = 0; i < std::min<std::size_t>(16, n); ++i) {
    first.push_back(json::Value(static_cast<double>(input[i])));
  }
  result.emplace("first", json::Value(std::move(first)));
  result.emplace("inversion_fraction",
                 json::Value(workload::inversion_fraction(input)));
  result.emplace("n", json::Value(static_cast<double>(n)));
  result.emplace(
      "rounds_attacked",
      json::Value(static_cast<double>(core::attacked_round_count(n, cfg))));
  return json::to_text(json::Value(std::move(result)));
}

std::string run_prove(const json::Object& p) {
  WCM_SPAN("serve.prove");
  analyze::symbolic::ProveOptions opts;
  opts.w = static_cast<u32>(param_u64(p, "w", 32, u32_max));
  opts.b = static_cast<u32>(param_u64(p, "b", 64, u32_max));
  opts.pad = static_cast<u32>(param_u64(p, "pad", 0, u32_max));
  opts.layout = gpusim::parse_layout_kind(param_string(p, "layout", "linear"));
  opts.e_min = static_cast<u32>(param_u64(p, "E_min", 3, u32_max));
  opts.e_max = static_cast<u32>(param_u64(p, "E_max", 0, u32_max));
  opts.ways = static_cast<u32>(param_u64(p, "ways", 4, u32_max));
  opts.digit_bits = static_cast<u32>(param_u64(p, "digit_bits", 4, u32_max));
  opts.any_e = param_bool(p, "any_E", false);
  opts.json = true;
  const std::string engine = param_string(p, "engine", "all");
  const std::vector<std::string> engines =
      engine == "all" ? analyze::symbolic::all_engines()
                      : std::vector<std::string>{engine};
  const auto report = analyze::symbolic::prove(engines, opts);
  std::ostringstream os;
  analyze::symbolic::render_json(os, report);
  return as_one_line(os.str());
}

std::string run_certify(const json::Object& p) {
  WCM_SPAN("serve.certify");
  analyze::symbolic::CertifyOptions opts;
  opts.w = static_cast<u32>(param_u64(p, "w", 32, u32_max));
  opts.bs = param_u32_list(p, "bs", {64});
  opts.pads = param_u32_list(p, "pads", {0});
  opts.layout = gpusim::parse_layout_kind(param_string(p, "layout", "linear"));
  opts.e_min = static_cast<u32>(param_u64(p, "E_min", 3, u32_max));
  opts.e_max = static_cast<u32>(param_u64(p, "E_max", 0, u32_max));
  opts.ways = static_cast<u32>(param_u64(p, "ways", 4, u32_max));
  opts.digit_bits = static_cast<u32>(param_u64(p, "digit_bits", 4, u32_max));
  opts.any_e = param_bool(p, "any_E", false);
  opts.json = true;
  const auto cert = analyze::symbolic::certify_engine(
      param_string(p, "engine", "shearsort"), opts);
  std::ostringstream os;
  analyze::symbolic::render_json(os, cert);
  return as_one_line(os.str());
}

std::string run_campaign(const Request& req, const ServerConfig& cfg,
                         runtime::CancelSource* drain) {
  WCM_SPAN("serve.campaign");
  const auto spec_field = req.params.find("spec");
  // canonical_request() already rejected a missing/ill-typed spec.
  const auto spec =
      runtime::parse_campaign_spec(json::to_text(spec_field->second));

  runtime::CampaignOptions opts;
  opts.threads = cfg.threads;
  opts.use_cache = !cfg.data_dir.empty();
  opts.cancel = drain;
  if (!cfg.data_dir.empty()) {
    // Durable state is keyed by the canonical request, so resubmitting the
    // identical campaign resumes its journal and reuses its cell cache.
    const std::string stem =
        "campaign-" + hex_u64(fnv1a(canonical_request(req)));
    const std::filesystem::path dir(cfg.data_dir);
    opts.cache_path = dir / (stem + ".wcmc");
    opts.journal_path = dir / (stem + ".wcmj");
    opts.resume = true;
  }
  const auto outcome = runtime::run_campaign(spec, opts);
  if (telemetry::enabled()) {
    telemetry::Registry& reg = telemetry::registry();
    reg.counter("serve.campaign.cells").add(outcome.cells);
    reg.counter("serve.campaign.computed").add(outcome.computed);
    reg.counter("serve.campaign.cached").add(outcome.cache_hits);
    reg.counter("serve.campaign.replayed").add(outcome.replayed);
    reg.counter("serve.campaign.quarantined").add(outcome.quarantined.size());
  }
  if (outcome.interrupted()) {
    throw interrupted_error(
        "campaign drained with " + std::to_string(outcome.cancelled) +
        " cells pending; resubmit the identical request to resume");
  }

  // The aggregate is a pure function of the spec (docs/RUNTIME.md); the
  // volatile counts (computed/cached/replayed, wall time) stay out of the
  // response so cold and warm answers are byte-identical.
  json::Object result;
  result.emplace("aggregate", json::parse(outcome.json));
  result.emplace("cells", json::Value(static_cast<double>(outcome.cells)));
  result.emplace("name", json::Value(spec.name));
  result.emplace("quarantined", json::Value(static_cast<double>(
                                    outcome.quarantined.size())));
  return json::to_text(json::Value(std::move(result)));
}

std::string run_metrics(const json::Object& p) {
  // The admin path answers inline, without canonical_request(), so the
  // params are validated here (mirroring canonical_metrics in protocol.cpp).
  for (const auto& [key, value] : p) {
    if (key != "format") {
      throw parse_error("unknown param '" + key +
                        "' for op 'metrics' (valid: format)");
    }
  }
  const std::string format = param_string(p, "format", "json");
  if (format != "json" && format != "text" && format != "prometheus") {
    throw parse_error("unknown value '" + format +
                      "' for param 'format' (valid: json, prometheus, "
                      "text)");
  }
  const telemetry::Snapshot snap = telemetry::registry().snapshot();
  if (format == "json") {
    std::ostringstream os;
    snap.write_json(os);
    return as_one_line(os.str());
  }
  // Text and Prometheus expositions are line-oriented documents; wrap
  // them in a JSON envelope so the response stays one strict-JSON line.
  std::ostringstream os;
  if (format == "prometheus") {
    telemetry::write_prometheus(os, snap);
  } else {
    snap.write_text(os);
  }
  json::Object result;
  result.emplace("body", json::Value(os.str()));
  result.emplace("format", json::Value(format));
  return json::to_text(json::Value(std::move(result)));
}

std::string run_trace() {
  std::ostringstream os;
  telemetry::write_chrome_trace(os);
  return as_one_line(os.str());
}

}  // namespace

std::string execute(const Request& req, const ServerConfig& cfg,
                    runtime::CancelSource* drain) {
  if (req.op == "generate") {
    return run_generate(req.params);
  }
  if (req.op == "prove") {
    return run_prove(req.params);
  }
  if (req.op == "certify") {
    return run_certify(req.params);
  }
  if (req.op == "campaign") {
    return run_campaign(req, cfg, drain);
  }
  if (req.op == "metrics") {
    return run_metrics(req.params);
  }
  if (req.op == "trace") {
    return run_trace();
  }
  throw parse_error("unknown op '" + req.op + "'");
}

ErrorType error_type_of(const std::exception& e) noexcept {
  if (dynamic_cast<const parse_error*>(&e) != nullptr) {
    return ErrorType::parse;
  }
  if (dynamic_cast<const io_error*>(&e) != nullptr) {
    return ErrorType::io;
  }
  if (dynamic_cast<const interrupted_error*>(&e) != nullptr) {
    return ErrorType::interrupted;
  }
  if (dynamic_cast<const config_error*>(&e) != nullptr) {
    return ErrorType::config;
  }
  if (dynamic_cast<const simulation_error*>(&e) != nullptr) {
    return ErrorType::internal;
  }
  // Remaining contract violations are bad parameters (a generate request
  // whose E is not co-prime with w, say), not daemon bugs.
  if (dynamic_cast<const contract_error*>(&e) != nullptr) {
    return ErrorType::config;
  }
  return ErrorType::internal;
}

}  // namespace wcm::serve
