#pragma once
// Blocking line-protocol client of the wcmd daemon, shared by the
// `wcmgen serve` smoke paths, wcm-loadgen, and the daemon tests.
//
// One Client is one connection.  send()/recv_line() are split so a
// closed-loop caller can roundtrip() while an open-loop load generator
// pipelines: writes run ahead and a reader drains responses in arrival
// order (per-connection ordering is part of the protocol contract).
// Not thread-safe; give each thread its own Client.

#include <optional>
#include <string>

#include "util/math.hpp"

namespace wcm::serve {

class Client {
 public:
  /// Connect to a Unix-domain socket (`@name` = abstract namespace).
  /// Throws wcm::io_error when nobody is listening.
  explicit Client(const std::string& socket);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Write one request line (newline appended).  Throws wcm::io_error on
  /// a broken connection.
  void send(const std::string& line);

  /// Read the next response line (newline stripped); std::nullopt on a
  /// clean EOF.  Throws wcm::io_error on a read failure.
  [[nodiscard]] std::optional<std::string> recv_line();

  /// send() + recv_line(), throwing wcm::io_error when the daemon closed
  /// before answering.  For callers with no pipelined writes in flight.
  [[nodiscard]] std::string roundtrip(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

/// Connect, retrying every 10ms for up to `timeout_ms`, for callers that
/// just spawned the daemon and must wait for its socket to appear.
/// Throws wcm::io_error when the timeout expires.
[[nodiscard]] Client connect_with_retry(const std::string& socket,
                                        u64 timeout_ms);

}  // namespace wcm::serve
