#pragma once
// Wire protocol of the wcmd daemon (docs/SERVE.md).
//
// Transport is a Unix-domain stream socket carrying line-delimited strict
// JSON: one request object per line, one response object per line, in
// request order per connection.  Requests:
//
//   {"op":"generate","id":"r1","tenant":"ci","deadline_ms":2000,
//    "params":{"E":5,"b":64,"k":2},
//    "trace":{"trace_id":"00000000000000a7"}}
//
// `op` is required; `id` (echo token), `tenant` (cache shard, default
// "default"), `deadline_ms` (queueing budget, 0 = none), `params`
// (op-specific object) and `trace` (correlation ids, docs/SERVE.md
// "Request tracing") are optional.  Unlike every other field, `trace` is
// parsed *tolerantly*: unknown subfields are ignored and corrupt values
// degrade to "no context" — tracing observes requests, it must never
// fail one.  Responses are either
//
//   {"id":"r1","ok":true,"result":{...}}
//   {"error":{"message":"...","type":"parse"},"id":"r1","ok":false}
//
// rendered with util/json's writer — object keys in sorted order, no
// volatile fields (no timing, no cached-vs-computed flag) — so the same
// request yields the byte-identical response line on a cold cache, a warm
// cache, and any WCM_THREADS setting.  That determinism contract is what
// the serve_ci gate byte-compares.
//
// canonical_request() maps a cacheable request onto the normalized
// parameter string its cache key and single-flight key hash: defaults
// applied, fields in fixed order, tenant and id excluded.  Two requests
// with equal canonicals are the same work by construction.

#include <limits>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/math.hpp"

namespace wcm::serve {

/// Protocol revision; bump on any wire-visible change.
inline constexpr u32 protocol_version = 1;

/// Hard bound on one request line (newline included).  Longer lines are
/// answered with a `too_large` error and discarded without parsing.
inline constexpr std::size_t max_request_bytes = 64 * 1024;

/// Typed error classes a response can carry (`error.type`).
enum class ErrorType {
  parse,        ///< malformed JSON, unknown field, bad value
  unknown_op,   ///< `op` names no operation
  config,       ///< parameters violate an E/b/w-style constraint
  io,           ///< daemon-side file failure (cache, journal, spec)
  too_large,    ///< request line exceeds max_request_bytes
  overloaded,   ///< admission queue full — load shed, retry later
  deadline,     ///< deadline_ms expired while the request was queued
  interrupted,  ///< drain cancelled the operation (campaign; resumable)
  internal,     ///< anything else (simulator invariant, unexpected error)
};

[[nodiscard]] const char* to_string(ErrorType type) noexcept;

/// One decoded request line.
struct Request {
  std::string op;
  std::string id;                  ///< echoed verbatim in the response
  std::string tenant = "default";  ///< response-cache shard
  u64 deadline_ms = 0;             ///< 0 = no deadline
  json::Object params;
  // Optional trace context from the wire ("trace" object field,
  // docs/SERVE.md): correlation ids the daemon threads through batching,
  // scheduler jobs, and kernel spans.  0 = absent (the daemon mints a
  // trace_id itself).  Trace fields are observability-only: they never
  // enter canonical_request(), the cache key, or the response bytes, and
  // a corrupt trace field degrades to "absent" (counted on
  // `serve.trace.invalid`) instead of refusing the request.
  u64 trace_id = 0;
  u64 parent_span_id = 0;
};

/// True iff `op` names an operation the daemon dispatches through the
/// batch scheduler and answers from the tenant cache (generate, prove,
/// certify, campaign) — as opposed to the admin ops (metrics, trace,
/// health, drain) the connection thread answers inline.
[[nodiscard]] bool is_batched_op(const std::string& op);

/// Decode one request line.  Throws wcm::parse_error on malformed JSON,
/// a non-object document, an unknown or wrongly-typed field, a missing
/// `op`, or an empty/oversized tenant name.
[[nodiscard]] Request parse_request(const std::string& line);

/// Normalized parameter string of a batched request: op-specific defaults
/// applied, fields in fixed order, independent of `id`/`tenant` and of the
/// JSON field order on the wire.  Throws wcm::parse_error on unknown or
/// ill-typed params (so a bad request is refused before it can join a
/// flight or occupy a queue slot).
[[nodiscard]] std::string canonical_request(const Request& req);

/// Render the success response line (no trailing newline).  `result_json`
/// must be one strict-JSON value; it is spliced in verbatim.
[[nodiscard]] std::string ok_response(const std::string& id,
                                      const std::string& result_json);

/// Render the typed error response line (no trailing newline).
[[nodiscard]] std::string error_response(const std::string& id,
                                         ErrorType type,
                                         const std::string& message);

// Typed param accessors shared by canonical_request() and the handlers —
// one defaulting rule, applied in both places, or the canonical string
// and the executed work could drift apart.  All throw wcm::parse_error
// naming the param on a wrong type or out-of-range value.

[[nodiscard]] u64 param_u64(const json::Object& params, const char* name,
                            u64 fallback,
                            u64 max = std::numeric_limits<u64>::max());
[[nodiscard]] bool param_bool(const json::Object& params, const char* name,
                              bool fallback);
[[nodiscard]] std::string param_string(const json::Object& params,
                                       const char* name,
                                       const std::string& fallback);
/// Non-empty list of u32 (certify's bs/pads grid axes).
[[nodiscard]] std::vector<u32> param_u32_list(const json::Object& params,
                                              const char* name,
                                              std::vector<u32> fallback);

}  // namespace wcm::serve
