#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <iostream>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/cache.hpp"
#include "runtime/singleflight.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/tenant_cache.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sliding.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_context.hpp"
#include "util/check.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/version.hpp"

namespace wcm::serve {

namespace detail {

void accept_failpoint() {
  WCM_FAILPOINT("serve.accept", io_error, "injected accept failure");
}

void read_failpoint() {
  WCM_FAILPOINT("serve.read", io_error, "injected read failure");
}

void write_failpoint() {
  WCM_FAILPOINT("serve.write", io_error, "injected write failure");
}

void dispatch_failpoint() {
  WCM_FAILPOINT("serve.dispatch", simulation_error,
                "injected dispatch failure");
}

void trace_inject_failpoint() {
  WCM_FAILPOINT("serve.trace.inject", simulation_error,
                "injected trace-context failure");
}

}  // namespace detail

namespace {

void count(const char* name) {
  if (telemetry::enabled()) {
    telemetry::registry().counter(name).add();
  }
}

/// Inverse of to_string(ErrorType), for replaying a FlightResult's stored
/// error class onto the wire.  Unknown strings degrade to `internal`.
ErrorType error_type_from(const std::string& name) noexcept {
  for (const ErrorType t :
       {ErrorType::parse, ErrorType::unknown_op, ErrorType::config,
        ErrorType::io, ErrorType::too_large, ErrorType::overloaded,
        ErrorType::deadline, ErrorType::interrupted, ErrorType::internal}) {
    if (name == to_string(t)) {
      return t;
    }
  }
  return ErrorType::internal;
}

/// Decoded socket address: `@name` = Linux abstract namespace (sun_path
/// starts with NUL, nothing on disk), anything else a filesystem path.
struct SocketAddr {
  sockaddr_un addr{};
  socklen_t len = 0;
  bool abstract = false;
};

SocketAddr socket_addr(const std::string& name) {
  SocketAddr sa;
  sa.addr.sun_family = AF_UNIX;
  sa.abstract = !name.empty() && name.front() == '@';
  const std::string path = sa.abstract ? name.substr(1) : name;
  WCM_CHECK_IO(!path.empty(), "socket name '" + name + "' is empty");
  WCM_CHECK_IO(path.size() + 1 < sizeof(sa.addr.sun_path),
               "socket name '" + name + "' exceeds the sockaddr_un limit");
  if (sa.abstract) {
    sa.addr.sun_path[0] = '\0';
    std::memcpy(sa.addr.sun_path + 1, path.data(), path.size());
    sa.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                    path.size());
  } else {
    std::memcpy(sa.addr.sun_path, path.data(), path.size() + 1);
    sa.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                    path.size() + 1);
  }
  return sa;
}

std::string errno_text() { return std::strerror(errno); }  // NOLINT

/// Positive-double env knob; anything unset, non-numeric, trailing-junk,
/// or non-positive falls back.
double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !(parsed > 0.0)) {
    return fallback;
  }
  return parsed;
}

}  // namespace

struct Server::Impl {
  // One accepted client.  The reader thread owns fd lifetime; writers
  // (dispatcher-driven flight callbacks) serialize on write_mu.  `pending`
  // counts this connection's requests still in flight — the reader may not
  // close the socket until every one has been answered (the zero-drop
  // drain invariant).
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::mutex write_mu;
    std::atomic<std::size_t> pending{0};
  };

  // One admitted flight leader waiting for the dispatcher.
  struct QueueItem {
    Request req;
    u64 key = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    /// The leader's request trace context (serve.request span as parent),
    /// installed on the worker that runs the batch job.
    telemetry::TraceContext trace;
  };

  explicit Impl(ServerConfig cfg)
      : cfg_(std::move(cfg)),
        slo_ms_(env_double("WCM_SLO_MS", 250.0)),
        slo_window_s_(env_double("WCM_SLO_WINDOW_S", 60.0)) {
    worker_threads_ = cfg_.threads != 0 ? cfg_.threads
                                        : runtime::threads_from_env(1);
    if (worker_threads_ == 0) {
      worker_threads_ = 1;
    }
  }

  // ---- lifecycle -------------------------------------------------------

  const ServerStats& serve() {
    open_data_dir();
    bind_socket();
    if (log_ != nullptr) {
      *log_ << "wcmd: serving on " << cfg_.socket << " (threads="
            << worker_threads_ << ", queue_max=" << cfg_.queue_max
            << ", cache=" << (cfg_.data_dir.empty() ? "memory" : cfg_.data_dir)
            << ")\n";
    }
    dispatcher_ = std::thread([this] { dispatch_loop(); });
    accept_loop();
    drain();
    return stats_;
  }

  void request_drain() noexcept { drain_.cancel(); }

  // ---- socket ----------------------------------------------------------

  void open_data_dir() {
    if (cfg_.data_dir.empty()) {
      return;
    }
    std::filesystem::create_directories(cfg_.data_dir);
    cache_ = TenantCache::load(wcms_path(), runtime::code_version_salt());
    if (log_ != nullptr && cache_.total_size() > 0) {
      *log_ << "wcmd: warmed " << cache_.total_size()
            << " cached responses from " << wcms_path().string() << "\n";
    }
  }

  [[nodiscard]] std::filesystem::path wcms_path() const {
    return std::filesystem::path(cfg_.data_dir) / "responses.wcms";
  }

  void bind_socket() {
    const SocketAddr sa = socket_addr(cfg_.socket);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    WCM_CHECK_IO(listen_fd_ >= 0, "socket(): " + errno_text());
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
    const auto* addr = reinterpret_cast<const sockaddr*>(&sa.addr);
    if (::bind(listen_fd_, addr, sa.len) != 0) {
      if (errno == EADDRINUSE && !sa.abstract) {
        // A leftover socket file from a crashed daemon binds as "in use".
        // Distinguish it from a live daemon by probing: a refused connect
        // means nobody is listening and the stale file may be reclaimed.
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        WCM_CHECK_IO(probe >= 0, "socket(): " + errno_text());
        const bool live = ::connect(probe, addr, sa.len) == 0;
        ::close(probe);
        if (live) {
          ::close(listen_fd_);
          listen_fd_ = -1;
          throw io_error("socket '" + cfg_.socket +
                         "' is already served by a live daemon");
        }
        std::filesystem::remove(cfg_.socket);
        WCM_CHECK_IO(::bind(listen_fd_, addr, sa.len) == 0,
                     "bind('" + cfg_.socket + "'): " + errno_text());
      } else {
        const std::string why = errno_text();
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw io_error("bind('" + cfg_.socket + "'): " + why);
      }
    }
    WCM_CHECK_IO(::listen(listen_fd_, 64) == 0,
                 "listen('" + cfg_.socket + "'): " + errno_text());
  }

  // ---- accept loop (serve() caller thread) -----------------------------

  void accept_loop() {
    while (!drain_.cancelled()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready <= 0) {
        continue;  // timeout or EINTR: re-check the drain flag
      }
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        continue;
      }
      try {
        detail::accept_failpoint();
      } catch (const error&) {
        count("serve.accept.drop");
        ::close(fd);
        continue;
      }
      if (live_conns_.load(std::memory_order_relaxed) >=
          cfg_.max_connections) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        count("serve.shed");
        // Best-effort courtesy line; a shed connection never counted a
        // request, so this write stays out of the responses tally.
        const std::string line =
            error_response("", ErrorType::overloaded,
                           "connection limit reached (max_connections=" +
                               std::to_string(cfg_.max_connections) +
                               "); retry later") +
            "\n";
        (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      count("serve.accepted");
      live_conns_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
      conn->thread = std::thread([this, conn] { conn_loop(conn); });
    }
  }

  // ---- per-connection reader -------------------------------------------

  void conn_loop(const std::shared_ptr<Conn>& conn) {
    std::string line;
    bool discarding = false;  // oversized line: drop bytes until newline
    char chunk[4096];
    while (!drain_.cancelled()) {
      pollfd pfd{conn->fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready <= 0) {
        continue;
      }
      try {
        detail::read_failpoint();
      } catch (const error&) {
        count("serve.read.fail");
        break;
      }
      const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
      if (n == 0) {
        break;  // client closed
      }
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        count("serve.read.fail");
        break;
      }
      for (ssize_t i = 0; i < n; ++i) {
        const char c = chunk[i];
        if (c == '\n') {
          if (!discarding) {
            process_line(conn, line);
          }
          discarding = false;
          line.clear();
          continue;
        }
        if (discarding) {
          continue;
        }
        line.push_back(c);
        if (line.size() >= max_request_bytes) {
          // The oversized line counts as one request and gets its one
          // (typed) response now; the rest of it is dropped unread.
          requests_.fetch_add(1, std::memory_order_relaxed);
          count("serve.requests");
          count("serve.too_large");
          write_line(*conn, error_response(
                                "", ErrorType::too_large,
                                "request line exceeds " +
                                    std::to_string(max_request_bytes) +
                                    " bytes"));
          discarding = true;
          line.clear();
        }
      }
    }
    // A partial trailing line was never a request; drop it.  Every line
    // that *was* read must be answered before the socket may close.
    while (conn->pending.load(std::memory_order_acquire) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(conn->fd);
    live_conns_.fetch_sub(1, std::memory_order_relaxed);
  }

  // ---- request admission (connection thread) ---------------------------

  void process_line(const std::shared_ptr<Conn>& conn,
                    const std::string& line) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    count("serve.requests");
    Request req;
    try {
      req = parse_request(line);
    } catch (const std::exception& e) {
      write_line(*conn, error_response("", ErrorType::parse, e.what()));
      return;
    }
    // Everything from here runs under the request's trace context: the
    // serve.request span, the admission decisions, and (for batched ops)
    // the context captured into the queue item and the deliver callback.
    const telemetry::ScopedTraceContext trace_scope(request_trace(req));
    WCM_SPAN("serve.request");
    if (telemetry::eventlog::log_enabled()) {
      json::Object fields;
      fields.emplace("id", json::Value(req.id));
      fields.emplace("op", json::Value(req.op));
      telemetry::eventlog::emit("serve.request", std::move(fields));
    }
    if (req.op == "health") {
      write_line(*conn, ok_response(req.id, health_json()));
      return;
    }
    if (req.op == "drain") {
      // Acknowledge first: after request_drain() the reader stops and the
      // acknowledgement could never be written.
      write_line(*conn, ok_response(req.id, "{\"draining\":true}"));
      request_drain();
      return;
    }
    if (req.op == "metrics" || req.op == "trace") {
      try {
        write_line(*conn, ok_response(req.id, execute(req, cfg_, &drain_)));
      } catch (const std::exception& e) {
        write_line(*conn, error_response(req.id, error_type_of(e), e.what()));
      }
      return;
    }
    if (!is_batched_op(req.op)) {
      write_line(*conn, error_response(req.id, ErrorType::unknown_op,
                                       "unknown op '" + req.op + "'"));
      return;
    }
    std::string canonical;
    try {
      canonical = canonical_request(req);
    } catch (const std::exception& e) {
      write_line(*conn, error_response(req.id, error_type_of(e), e.what()));
      return;
    }
    const u64 key = cache_.key_of(canonical);
    if (const auto hit = cache_.lookup(req.tenant, key)) {
      write_line(*conn, ok_response(req.id, *hit));
      emit_respond(req.id, true);
      return;
    }
    conn->pending.fetch_add(1, std::memory_order_acq_rel);
    // current_trace_context() here carries the serve.request span as the
    // parent, so serve.respond (and the scheduler job, via the queue item)
    // nest under it in the exported causal tree.
    auto deliver = [this, conn, id = req.id, tenant = req.tenant, key,
                    trace = telemetry::current_trace_context()](
                       const runtime::FlightResult& r) {
      const telemetry::ScopedTraceContext trace_scope(trace);
      WCM_SPAN("serve.respond");
      if (r.ok) {
        // Idempotent across the flight's waiters; populates the shard of
        // every tenant that joined, each within its own quota.
        cache_.insert(tenant, key, r.value);
        write_line(*conn, ok_response(id, r.value));
      } else {
        write_line(*conn, error_response(id, error_type_from(r.error_type),
                                         r.error_message));
      }
      emit_respond(id, r.ok);
      conn->pending.fetch_sub(1, std::memory_order_acq_rel);
    };
    if (!flights_.lead_or_join(key, std::move(deliver))) {
      count("serve.dedup.hits");
      return;  // joined an in-flight leader; its completion answers us
    }
    enqueue(std::move(req), key);
  }

  /// Mint the request's trace context: the wire trace_id when the client
  /// sent one, a fresh daemon-minted id otherwise.  Tracing is pure
  /// observation — when neither the tracer nor the event log is on, no
  /// context is minted, and an injected "serve.trace.inject" failure
  /// degrades to no-context (counted on `serve.trace.drop`) instead of
  /// touching the response path.
  [[nodiscard]] telemetry::TraceContext request_trace(const Request& req) {
    if (!telemetry::tracing() && !telemetry::eventlog::log_enabled()) {
      return {};
    }
    try {
      detail::trace_inject_failpoint();
    } catch (const error&) {
      count("serve.trace.drop");
      return {};
    }
    telemetry::TraceContext ctx;
    ctx.trace_id =
        req.trace_id != 0 ? req.trace_id : telemetry::next_trace_id();
    ctx.span_id = req.parent_span_id;
    ctx.tenant = req.tenant;
    return ctx;
  }

  /// Event-log record of one response write (runs under the caller's
  /// trace scope, so the line carries the request's correlation ids).
  void emit_respond(const std::string& id, bool ok) {
    if (!telemetry::eventlog::log_enabled()) {
      return;
    }
    json::Object fields;
    fields.emplace("id", json::Value(id));
    fields.emplace("ok", json::Value(ok));
    telemetry::eventlog::emit("serve.respond", std::move(fields));
  }

  void enqueue(Request req, u64 key) {
    QueueItem item;
    item.key = key;
    item.trace = telemetry::current_trace_context();
    item.enqueued = std::chrono::steady_clock::now();
    if (req.deadline_ms != 0) {
      item.has_deadline = true;
      item.deadline =
          item.enqueued + std::chrono::milliseconds(req.deadline_ms);
    }
    item.req = std::move(req);
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (queue_.size() >= cfg_.queue_max) {
        lock.unlock();
        shed_.fetch_add(1, std::memory_order_relaxed);
        count("serve.shed");
        runtime::FlightResult r;
        r.error_type = to_string(ErrorType::overloaded);
        r.error_message = "admission queue full (queue_max=" +
                          std::to_string(cfg_.queue_max) + "); retry later";
        flights_.complete(key, r);  // the leader must still answer
        return;
      }
      queue_.push_back(std::move(item));
      if (telemetry::enabled()) {
        telemetry::registry().gauge("serve.queue.depth").set(
            static_cast<double>(queue_.size()));
      }
    }
    queue_cv_.notify_one();
  }

  // ---- dispatcher ------------------------------------------------------

  void dispatch_loop() {
    for (;;) {
      std::vector<QueueItem> batch;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock,
                       [this] { return stop_dispatch_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stop requested and nothing left
        }
        while (!queue_.empty() && batch.size() < cfg_.batch_max) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (telemetry::enabled()) {
          telemetry::registry().gauge("serve.queue.depth").set(
              static_cast<double>(queue_.size()));
        }
      }
      run_batch(batch);
    }
  }

  void run_batch(std::vector<QueueItem>& batch) {
    WCM_SPAN("serve.batch");
    count("serve.batches");
    struct Slot {
      runtime::FlightResult result;
    };
    std::vector<Slot> slots(batch.size());
    std::vector<std::size_t> job_slot;  // slot index of each added job
    runtime::JobGraph graph;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueueItem& item = batch[i];
      // deadline_ms bounds *queueing* only: a request that waited too long
      // is answered `deadline` instead of executed; one that reached the
      // front in time runs to completion (docs/SERVE.md).
      if (item.has_deadline && now > item.deadline) {
        count("serve.deadline.expired");
        slots[i].result.error_type = to_string(ErrorType::deadline);
        slots[i].result.error_message =
            "deadline_ms=" + std::to_string(item.req.deadline_ms) +
            " expired while the request was queued";
        continue;
      }
      // A flight whose result landed in the cache after its leader was
      // admitted (e.g. a just-completed identical flight) resolves here
      // without a job, keeping serve.jobs = actual computations.
      if (const auto hit = cache_.lookup(item.req.tenant, item.key)) {
        slots[i].result.ok = true;
        slots[i].result.value = *hit;
        continue;
      }
      count("serve.jobs");
      job_slot.push_back(i);
      runtime::JobOptions opts;
      opts.label = item.req.op;
      opts.trace = item.trace;
      graph.add(
          [this, &item, &slot = slots[i]](runtime::JobContext&) {
            detail::dispatch_failpoint();
            slot.result.value = execute(item.req, cfg_, &drain_);
            slot.result.ok = true;
          },
          std::move(opts));
    }
    if (!job_slot.empty()) {
      runtime::RunOptions ropts;
      ropts.threads = worker_threads_;
      const runtime::RunReport report = runtime::run(graph, ropts);
      for (std::size_t j = 0; j < job_slot.size(); ++j) {
        Slot& slot = slots[job_slot[j]];
        const runtime::JobOutcome& out = report.outcomes[j];
        if (out.state == runtime::JobState::done) {
          continue;  // the job body filled the slot
        }
        ErrorType type = ErrorType::internal;
        std::string message = out.message;
        if (out.error) {
          try {
            std::rethrow_exception(out.error);
          } catch (const std::exception& e) {
            type = error_type_of(e);
            message = e.what();
          } catch (...) {  // non-std exceptions stay `internal`
          }
        }
        slot.result.ok = false;
        slot.result.error_type = to_string(type);
        slot.result.error_message = message;
      }
    }
    const auto done = std::chrono::steady_clock::now();
    const u64 done_ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            done.time_since_epoch())
            .count());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (telemetry::enabled()) {
        const std::chrono::duration<double, std::milli> waited =
            done - batch[i].enqueued;
        telemetry::registry()
            .histogram("serve.latency_ms", {}, latency_bounds_)
            .observe(waited.count());
        observe_tenant_latency(batch[i].req.tenant, done_ns, waited.count());
      }
      flights_.complete(batch[i].key, slots[i].result);
    }
  }

  /// Feed one completed request into its tenant's sliding window and
  /// refresh that tenant's window-p50/p99 and SLO burn-rate gauges
  /// (docs/TELEMETRY.md "Serving metrics").
  void observe_tenant_latency(const std::string& tenant, u64 now_ns,
                              double waited_ms) {
    telemetry::SlidingStats::Summary sum;
    {
      std::lock_guard<std::mutex> lock(slo_mu_);
      auto it = tenant_stats_.find(tenant);
      if (it == tenant_stats_.end()) {
        it = tenant_stats_
                 .emplace(tenant,
                          telemetry::SlidingStats(slo_window_s_, slo_ms_))
                 .first;
      }
      it->second.observe(now_ns, waited_ms);
      sum = it->second.summarize(now_ns);
    }
    telemetry::Registry& reg = telemetry::registry();
    reg.gauge("serve.latency.window_p50_ms", {{"tenant", tenant}})
        .set(sum.p50_ms);
    reg.gauge("serve.latency.window_p99_ms", {{"tenant", tenant}})
        .set(sum.p99_ms);
    reg.gauge("serve.slo.burn_rate", {{"tenant", tenant}})
        .set(sum.burn_rate);
  }

  // ---- responses -------------------------------------------------------

  /// Write one response line.  Every call counts one attempted response —
  /// an injected or real send failure (client went away) is logged to
  /// telemetry, not held against the drain invariant.
  void write_line(Conn& conn, std::string line) {
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(conn.write_mu);
    responses_.fetch_add(1, std::memory_order_relaxed);
    count("serve.responses");
    try {
      detail::write_failpoint();
    } catch (const error&) {
      count("serve.write.fail");
      return;
    }
    const char* data = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::send(conn.fd, data, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        count("serve.write.fail");
        return;
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  /// The one deliberately volatile result (queue depth, in-flight count):
  /// liveness probes want the live numbers, so `health` is excluded from
  /// the byte-compare determinism contract (docs/SERVE.md).
  [[nodiscard]] std::string health_json() {
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      depth = queue_.size();
    }
    json::Object result;
    result.emplace("draining", json::Value(drain_.cancelled()));
    result.emplace("inflight",
                   json::Value(static_cast<double>(flights_.inflight())));
    result.emplace("ok", json::Value(true));
    result.emplace("protocol",
                   json::Value(static_cast<double>(protocol_version)));
    result.emplace("queue", json::Value(static_cast<double>(depth)));
    result.emplace("version", json::Value(std::string(version_string())));
    return json::to_text(json::Value(std::move(result)));
  }

  // ---- drain -----------------------------------------------------------

  void drain() {
    WCM_SPAN("serve.drain");
    ::close(listen_fd_);
    listen_fd_ = -1;
    const SocketAddr sa = socket_addr(cfg_.socket);
    if (!sa.abstract) {
      std::error_code ec;  // best-effort cleanup
      std::filesystem::remove(cfg_.socket, ec);
    }
    {
      // Readers exit once their pending responses land; joining them
      // proves every request line read has been answered.
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (const auto& conn : conns_) {
        if (conn->thread.joinable()) {
          conn->thread.join();
        }
      }
    }
    for (;;) {  // belt-and-braces: the joins above imply this
      bool queue_empty = false;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_empty = queue_.empty();
      }
      if (queue_empty && flights_.inflight() == 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      stop_dispatch_ = true;
    }
    queue_cv_.notify_all();
    dispatcher_.join();
    if (!cfg_.data_dir.empty()) {
      cache_.store(wcms_path());
    }
    stats_.accepted = accepted_.load();
    stats_.requests = requests_.load();
    stats_.responses = responses_.load();
    stats_.shed = shed_.load();
  }

  // ---- state -----------------------------------------------------------

  ServerConfig cfg_;
  /// serve.latency_ms bucket layout: 3 bounds per decade from 0.01 ms to
  /// 10 s, so a 0.05 ms cache hit and a multi-second campaign both land in
  /// meaningful buckets (satellite: log-scale latency histograms).
  const std::vector<double> latency_bounds_ =
      telemetry::log_scale_bounds(0.01, 10000.0, 3);
  double slo_ms_;       ///< WCM_SLO_MS (default 250)
  double slo_window_s_; ///< WCM_SLO_WINDOW_S (default 60)
  std::mutex slo_mu_;
  std::map<std::string, telemetry::SlidingStats> tenant_stats_;
  u32 worker_threads_ = 1;
  std::ostream* log_ = &std::cerr;
  int listen_fd_ = -1;

  runtime::CancelSource drain_;
  TenantCache cache_;
  runtime::SingleFlight flights_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<QueueItem> queue_;
  bool stop_dispatch_ = false;
  std::thread dispatcher_;

  std::mutex conns_mu_;
  std::list<std::shared_ptr<Conn>> conns_;
  std::atomic<std::size_t> live_conns_{0};

  std::atomic<u64> accepted_{0};
  std::atomic<u64> requests_{0};
  std::atomic<u64> responses_{0};
  std::atomic<u64> shed_{0};
  ServerStats stats_;
};

Server::Server(ServerConfig cfg) : impl_(std::make_unique<Impl>(std::move(cfg))) {}

Server::~Server() = default;

const ServerStats& Server::serve() { return impl_->serve(); }

void Server::request_drain() noexcept { impl_->request_drain(); }

runtime::CancelSource& Server::drain_source() noexcept {
  return impl_->drain_;
}

const ServerStats& Server::stats() const noexcept { return impl_->stats_; }

void Server::set_log(std::ostream* log) noexcept { impl_->log_ = log; }

namespace {

std::atomic<Server*> g_server{nullptr};

extern "C" void serve_on_signal(int) {
  Server* server = g_server.load(std::memory_order_relaxed);
  if (server != nullptr) {
    server->request_drain();  // one atomic store; async-signal-safe
  }
}

}  // namespace

int run_server(Server& server, bool quiet) {
  if (quiet) {
    server.set_log(nullptr);
  }
  g_server.store(&server, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = serve_on_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int {};
  struct sigaction old_term {};
  sigaction(SIGINT, &action, &old_int);
  sigaction(SIGTERM, &action, &old_term);
  const ServerStats* stats = nullptr;
  try {
    stats = &server.serve();
  } catch (...) {
    sigaction(SIGINT, &old_int, nullptr);
    sigaction(SIGTERM, &old_term, nullptr);
    g_server.store(nullptr, std::memory_order_relaxed);
    throw;
  }
  sigaction(SIGINT, &old_int, nullptr);
  sigaction(SIGTERM, &old_term, nullptr);
  g_server.store(nullptr, std::memory_order_relaxed);
  if (!quiet) {
    std::cerr << "wcmd: drained requests=" << stats->requests
              << " responses=" << stats->responses
              << " shed=" << stats->shed << "\n";
  }
  // The zero-drop invariant: every request line read was answered (write
  // *attempts* count — a vanished client is not a dropped response).
  return stats->requests == stats->responses ? 0 : 5;
}

}  // namespace wcm::serve
