#pragma once
// Multi-tenant response cache of the wcmd daemon.
//
// One shard per tenant, each an LRU-bounded map from request key (FNV-1a
// of the canonical request string, salted with the WCMC code-version salt)
// to the rendered result JSON.  The per-tenant bound comes from
// WCM_CACHE_MAX — the same knob that bounds the campaign's WCMC cache — so
// one chatty tenant can evict only its own entries, never a neighbor's
// (the multi-tenant quota the serve SLOs assume, docs/SERVE.md).
//
// On-disk WCMS format, version 1 (little-endian), mirroring WCMC:
//   magic    "WCMS"          4 bytes
//   version  u32             currently 1
//   salt     u64             code-version salt the entries were computed at
//   count    u64             number of records
//   records  count x { tenant_len u64, tenant bytes,
//                      key u64, value_len u64, value bytes }
//   checksum u64             FNV-1a over every preceding byte
//
// Records are written in (tenant, key) order, so a given surviving entry
// set stores byte-identically.  load() starts cold on a missing file or a
// salt mismatch and throws wcm::io_error on corruption, exactly like WCMC.
//
// All public methods are thread-safe (one mutex): connection threads look
// up concurrently with the dispatcher's inserts.

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "runtime/lru.hpp"
#include "util/math.hpp"

namespace wcm::serve {

/// Hard cap on records in a WCMS file; load() rejects larger counts as
/// corrupt before allocating (same defense as WCMC's max_wcmc_records).
inline constexpr u64 max_wcms_records = u64{1} << 24;

/// Cap on one cached value's byte size in a WCMS file (corruption guard).
inline constexpr u64 max_wcms_value_bytes = u64{1} << 30;

/// The WCMS version store() emits.
inline constexpr std::uint32_t wcms_version = 1;

class TenantCache {
 public:
  /// Keyed at runtime::code_version_salt(), bounded per tenant by
  /// WCM_CACHE_MAX (0/unset = unbounded).
  TenantCache();
  /// Explicit salt and per-tenant entry bound (tests; 0 = unbounded).
  TenantCache(u64 salt, u64 max_entries_per_tenant)
      : salt_(salt), max_per_tenant_(max_entries_per_tenant) {}

  TenantCache(TenantCache&&) noexcept = default;
  TenantCache& operator=(TenantCache&&) noexcept = default;

  /// Hash a canonical request string into this cache's address space.
  [[nodiscard]] u64 key_of(const std::string& canonical) const noexcept;

  /// Cached result for (tenant, key), refreshing its recency.  Counts
  /// serve.cache.hit / serve.cache.miss{tenant=...}.
  [[nodiscard]] std::optional<std::string> lookup(const std::string& tenant,
                                                  u64 key);

  /// Admit (serve.cache.admit{tenant=...}) and evict the tenant's coldest
  /// entries over the bound (serve.cache.evict{tenant=...}).  Overwriting
  /// a live key only refreshes it — re-inserting a shared single-flight
  /// result is idempotent.
  void insert(const std::string& tenant, u64 key, std::string result);

  [[nodiscard]] std::size_t size(const std::string& tenant) const;
  [[nodiscard]] std::size_t total_size() const;
  [[nodiscard]] u64 salt() const noexcept { return salt_; }
  [[nodiscard]] u64 max_per_tenant() const noexcept { return max_per_tenant_; }

  /// Parse a WCMS file; missing file or salt mismatch yields an empty
  /// cache, a malformed file throws wcm::io_error.  Keyed at `salt`.
  [[nodiscard]] static TenantCache load(const std::filesystem::path& path,
                                        u64 salt);

  /// Write every entry to `path` in (tenant, key) order.  Throws
  /// wcm::io_error on failure.
  void store(const std::filesystem::path& path) const;

 private:
  struct Shard {
    std::map<u64, std::string> entries;  // ordered -> deterministic files
    runtime::LruIndex<u64> lru;
  };

  void evict_over_cap(const std::string& tenant, Shard& shard);

  u64 salt_ = 0;
  u64 max_per_tenant_ = 0;  // 0 = unbounded
  std::map<std::string, Shard> shards_;
  // unique_ptr keeps the cache movable (load() returns by value).
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
};

}  // namespace wcm::serve
