#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <thread>
#include <utility>

#include "util/check.hpp"
#include "util/error.hpp"

namespace wcm::serve {

namespace {

int connect_once(const std::string& socket) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const bool abstract = !socket.empty() && socket.front() == '@';
  const std::string path = abstract ? socket.substr(1) : socket;
  WCM_CHECK_IO(!path.empty(), "socket name '" + socket + "' is empty");
  WCM_CHECK_IO(path.size() + 1 < sizeof(addr.sun_path),
               "socket name '" + socket + "' exceeds the sockaddr_un limit");
  socklen_t len = 0;
  if (abstract) {
    addr.sun_path[0] = '\0';
    std::memcpy(addr.sun_path + 1, path.data(), path.size());
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + 1 +
                                 path.size());
  } else {
    std::memcpy(addr.sun_path, path.data(), path.size() + 1);
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                 path.size() + 1);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  WCM_CHECK_IO(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
    const std::string why = std::strerror(errno);  // NOLINT
    ::close(fd);
    throw io_error("connect('" + socket + "'): " + why);
  }
  return fd;
}

}  // namespace

Client::Client(const std::string& socket) : fd_(connect_once(socket)) {}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::send(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  const char* data = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw io_error(std::string("send(): ") + std::strerror(errno));
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::optional<std::string> Client::recv_line() {
  for (;;) {
    const auto newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) {
      return std::nullopt;  // clean EOF (a partial line is discarded)
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw io_error(std::string("recv(): ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string Client::roundtrip(const std::string& line) {
  send(line);
  auto response = recv_line();
  WCM_CHECK_IO(response.has_value(),
               "daemon closed the connection before answering");
  return *std::move(response);
}

Client connect_with_retry(const std::string& socket, u64 timeout_ms) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  for (;;) {
    try {
      return Client(socket);
    } catch (const io_error&) {
      if (std::chrono::steady_clock::now() >= give_up) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace wcm::serve
