#include "util/rng.hpp"

#include "util/check.hpp"

namespace wcm {

u64 splitmix64(u64& state) noexcept {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(u64 seed) noexcept {
  u64 sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Xoshiro256::below(u64 bound) {
  WCM_EXPECTS(bound > 0, "below(0) is ill-defined");
  // Lemire's nearly-divisionless method.
  __extension__ using u128 = unsigned __int128;  // GCC/Clang extension
  u128 m = static_cast<u128>((*this)()) * bound;
  auto lo = static_cast<u64>(m);
  if (lo < bound) {
    const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (lo < threshold) {
      m = static_cast<u128>((*this)()) * bound;
      lo = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

}  // namespace wcm
