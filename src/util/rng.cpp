#include "util/rng.hpp"

#include "util/check.hpp"

namespace wcm {

u64 splitmix64(u64& state) noexcept {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(u64 seed) noexcept {
  u64 sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 fork_seed(u64 root_seed, u64 stream) noexcept {
  // Feed both words through the splitmix64 finalizer so adjacent streams
  // land in unrelated regions of the seed space.
  u64 state = root_seed;
  const u64 a = splitmix64(state);
  state ^= stream * 0x9e3779b97f4a7c15ULL;
  const u64 b = splitmix64(state);
  return a ^ (b + 0x2545f4914f6cdd1dULL);
}

Xoshiro256 Xoshiro256::fork(u64 stream) const noexcept {
  u64 digest = s_[0];
  for (const u64 word : {s_[1], s_[2], s_[3]}) {
    digest = fork_seed(digest, word);
  }
  return Xoshiro256(fork_seed(digest, stream));
}

u64 Xoshiro256::below(u64 bound) {
  WCM_EXPECTS(bound > 0, "below(0) is ill-defined");
  // Lemire's nearly-divisionless method.
  __extension__ using u128 = unsigned __int128;  // GCC/Clang extension
  u128 m = static_cast<u128>((*this)()) * bound;
  auto lo = static_cast<u64>(m);
  if (lo < bound) {
    const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (lo < threshold) {
      m = static_cast<u128>((*this)()) * bound;
      lo = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

}  // namespace wcm
