#pragma once
// Precondition / postcondition checking in the spirit of the C++ Core
// Guidelines (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations throw typed exceptions from util/error.hpp so tests can assert
// on them and so a misuse of the library never silently corrupts a
// simulation result.  WCM_EXPECTS / WCM_ENSURES throw the generic
// `wcm::contract_error`; the WCM_CHECK_* variants throw the matching typed
// error so callers can tell a misconfiguration from corrupt input from a
// broken simulator invariant.

#include <string>

#include "util/error.hpp"

namespace wcm::detail {

[[noreturn]] void contract_failure(const char* kind, const char* cond,
                                   const char* file, int line,
                                   const std::string& msg);

/// "`cond` at file:line" — the context string attached by WCM_CHECK_*.
[[nodiscard]] std::string source_context(const char* cond, const char* file,
                                         int line);

}  // namespace wcm::detail

/// Check a precondition; throws wcm::contract_error on failure.
#define WCM_EXPECTS(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::wcm::detail::contract_failure("precondition", #cond, __FILE__,      \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Check a postcondition; throws wcm::contract_error on failure.
#define WCM_ENSURES(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::wcm::detail::contract_failure("postcondition", #cond, __FILE__,     \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Check a condition; throws `ErrorType(msg, "cond at file:line")` on
/// failure.  ErrorType must be one of the util/error.hpp classes.
#define WCM_CHECK_TYPED(cond, ErrorType, msg)                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ErrorType((msg), ::wcm::detail::source_context(#cond, __FILE__, \
                                                           __LINE__));      \
    }                                                                       \
  } while (false)

/// Configuration check; throws wcm::config_error on failure.
#define WCM_CHECK_CONFIG(cond, msg) \
  WCM_CHECK_TYPED(cond, ::wcm::config_error, msg)

/// File / stream check; throws wcm::io_error on failure.
#define WCM_CHECK_IO(cond, msg) WCM_CHECK_TYPED(cond, ::wcm::io_error, msg)

/// Text-parsing check; throws wcm::parse_error on failure.
#define WCM_CHECK_PARSE(cond, msg) \
  WCM_CHECK_TYPED(cond, ::wcm::parse_error, msg)

/// Simulator-invariant check; throws wcm::simulation_error on failure.
#define WCM_CHECK_SIM(cond, msg) \
  WCM_CHECK_TYPED(cond, ::wcm::simulation_error, msg)
