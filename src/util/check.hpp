#pragma once
// Precondition / postcondition checking in the spirit of the C++ Core
// Guidelines (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// Violations throw `wcm::contract_error` so tests can assert on them and so a
// misuse of the library never silently corrupts a simulation result.

#include <stdexcept>
#include <string>

namespace wcm {

/// Thrown when a WCM_EXPECTS / WCM_ENSURES contract is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* cond,
                                   const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace wcm

/// Check a precondition; throws wcm::contract_error on failure.
#define WCM_EXPECTS(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::wcm::detail::contract_failure("precondition", #cond, __FILE__,      \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

/// Check a postcondition; throws wcm::contract_error on failure.
#define WCM_ENSURES(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::wcm::detail::contract_failure("postcondition", #cond, __FILE__,     \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)
