#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace wcm::json {

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::null:
      return "null";
    case Kind::boolean:
      return "boolean";
    case Kind::number:
      return "number";
    case Kind::string:
      return "string";
    case Kind::array:
      return "array";
    case Kind::object:
      return "object";
  }
  return "?";
}

Value::Value(Array a)
    : kind_(Kind::array), array_(std::make_shared<const Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::object),
      object_(std::make_shared<const Object>(std::move(o))) {}

namespace {
[[noreturn]] void wrong_kind(const char* wanted, Kind got) {
  throw parse_error(std::string("expected a JSON ") + wanted + ", got " +
                    to_string(got));
}
}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::boolean) {
    wrong_kind("boolean", kind_);
  }
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::number) {
    wrong_kind("number", kind_);
  }
  return num_;
}

u64 Value::as_u64(u64 max) const {
  const double d = as_double();
  if (d < 0 || d != std::floor(d) || d > static_cast<double>(max)) {
    throw parse_error("expected a non-negative integer <= " +
                      std::to_string(max) + ", got " + std::to_string(d));
  }
  return static_cast<u64>(d);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::string) {
    wrong_kind("string", kind_);
  }
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::array) {
    wrong_kind("array", kind_);
  }
  return *array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::object) {
    wrong_kind("object", kind_);
  }
  return *object_;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value run() {
    Value v = value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw parse_error(why, "line " + std::to_string(line) + ":" +
                               std::to_string(col));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value value(int depth) {
    if (depth > kMaxDepth) {
      fail("JSON nested deeper than 64 levels");
    }
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return object(depth);
    }
    if (c == '[') {
      return array(depth);
    }
    if (c == '"') {
      return Value(string());
    }
    if (consume_literal("true")) {
      return Value(true);
    }
    if (consume_literal("false")) {
      return Value(false);
    }
    if (consume_literal("null")) {
      return Value();
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      return number();
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) {
      fail("malformed number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) {
        fail("malformed number (no digits after '.')");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) {
        fail("malformed number (empty exponent)");
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        default:
          fail(std::string("unsupported escape '\\") + e + "'");
      }
    }
  }

  Value array(int depth) {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      items.push_back(value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(items));
    }
  }

  Value object(int depth) {
    expect('{');
    Object fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(fields));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      if (!fields.emplace(key, value(depth + 1)).second) {
        fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(fields));
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        // The parser rejects \uXXXX, so raw control bytes have no escape;
        // replace them rather than emit a document parse() would refuse.
        os << (static_cast<unsigned char>(c) < 0x20 ? '?' : c);
    }
  }
  os << '"';
}

namespace {

void write_number(std::ostream& os, double v) {
  constexpr double exact = 9007199254740992.0;  // 2^53
  if (std::nearbyint(v) == v && v >= -exact && v <= exact) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void write(std::ostream& os, const Value& value) {
  switch (value.kind()) {
    case Kind::null:
      os << "null";
      return;
    case Kind::boolean:
      os << (value.as_bool() ? "true" : "false");
      return;
    case Kind::number:
      write_number(os, value.as_double());
      return;
    case Kind::string:
      write_string(os, value.as_string());
      return;
    case Kind::array: {
      os << '[';
      bool first = true;
      for (const Value& v : value.as_array()) {
        if (!first) {
          os << ',';
        }
        first = false;
        write(os, v);
      }
      os << ']';
      return;
    }
    case Kind::object: {
      os << '{';
      bool first = true;
      for (const auto& [key, v] : value.as_object()) {
        if (!first) {
          os << ',';
        }
        first = false;
        write_string(os, key);
        os << ':';
        write(os, v);
      }
      os << '}';
      return;
    }
  }
}

std::string to_text(const Value& value) {
  std::ostringstream os;
  write(os, value);
  return os.str();
}

}  // namespace wcm::json
