#pragma once
// Build identity: the project version plus the git-describe string the
// build was configured at.  `wcmgen version` prints both together with the
// current WCMC code-version salt (runtime/cache.hpp), which is the triple
// an operator needs to debug cache invalidation or daemon/client skew —
// two binaries that print different describes may disagree about every
// cache key even when their protocol versions match (docs/SERVE.md).

namespace wcm {

/// The CMake project version ("1.0.0"); "0.0.0" when built outside CMake.
[[nodiscard]] const char* version_string() noexcept;

/// `git describe --always --dirty` at configure time; "unknown" when the
/// source tree was not a git checkout (or git was unavailable).
[[nodiscard]] const char* build_describe() noexcept;

}  // namespace wcm
