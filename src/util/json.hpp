#pragma once
// Minimal JSON reader for configuration inputs (the campaign grid spec).
// The repository already *writes* JSON by hand (analysis/json_export.hpp);
// this is the matching reader: a strict recursive-descent parser over a
// small DOM, with no dependencies.
//
// Deliberate restrictions (all rejected with wcm::parse_error):
//   * \uXXXX escapes (specs are ASCII; the writer never emits them)
//   * duplicate object keys
//   * nesting deeper than 64 levels (stack-overflow guard)
//   * trailing garbage after the top-level value
//
// Objects preserve no insertion order — they are std::map, so iteration is
// key-sorted and deterministic.

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace wcm::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Kind { null, boolean, number, string, array, object };

[[nodiscard]] const char* to_string(Kind kind) noexcept;

/// One JSON value.  Accessors are contract-style: asking for the wrong
/// kind throws wcm::parse_error naming the actual kind, so spec-validation
/// code reads as straight-line field access.
class Value {
 public:
  Value() = default;  // null
  explicit Value(bool b) : kind_(Kind::boolean), bool_(b) {}
  explicit Value(double d) : kind_(Kind::number), num_(d) {}
  explicit Value(std::string s)
      : kind_(Kind::string), str_(std::move(s)) {}
  explicit Value(Array a);
  explicit Value(Object o);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::null; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::string;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::array; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::object;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Number that must be a non-negative integer <= max (most spec fields).
  [[nodiscard]] u64 as_u64(u64 max = ~u64{0}) const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // unique_ptr keeps Value a complete type inside its own containers.
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Object> object_;
};

/// Parse one JSON document.  Throws wcm::parse_error with a line:column
/// position on any syntax error, unsupported construct, or trailing text.
[[nodiscard]] Value parse(const std::string& text);

/// Serialize a value as one line of strict JSON that parse() round-trips:
/// object keys in map (sorted) order, strings restricted to the escapes
/// the parser accepts (control bytes outside \n \t \r are replaced with
/// '?'), integral numbers in [-2^53, 2^53] rendered without a fraction,
/// all other numbers in %.17g.  The serve protocol's determinism contract
/// (byte-identical responses, docs/SERVE.md) rests on this writer.
void write(std::ostream& os, const Value& value);

/// write() into a string.
[[nodiscard]] std::string to_text(const Value& value);

/// Escape and double-quote one string (the writer's string rule).
void write_string(std::ostream& os, const std::string& s);

}  // namespace wcm::json
