#pragma once
// Minimal aligned-text / CSV table writer used by the benchmark harness to
// print figure and table data in a stable, diffable format.

#include <iosfwd>
#include <string>
#include <vector>

namespace wcm {

/// A rectangular table of strings with named columns.  Cells are added
/// row-by-row; numeric helpers format with fixed precision so bench output
/// is stable across runs.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Start a new row; subsequent add() calls fill it left to right.
  Table& new_row();

  Table& add(std::string cell);
  Table& add(double v, int precision = 3);
  Table& add(long long v);
  Table& add(unsigned long long v);
  Table& add(std::size_t v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;

  /// Emit RFC-4180-ish CSV (no quoting needed for our content, checked).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_fixed(double v, int precision);

/// Artifact export: when the WCM_CSV_DIR environment variable is set,
/// write the table as <dir>/<name>.csv (creating the directory) and return
/// true; otherwise do nothing.  Lets `for b in build/bench/*; do $b; done`
/// double as a figure-data exporter.
bool maybe_export_csv(const Table& table, const std::string& name);

}  // namespace wcm
