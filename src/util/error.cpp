#include "util/error.hpp"

namespace wcm {

const char* to_string(errc code) noexcept {
  switch (code) {
    case errc::contract_violation:
      return "contract-violation";
    case errc::invalid_config:
      return "invalid-config";
    case errc::io_failure:
      return "io-failure";
    case errc::parse_failure:
      return "parse-failure";
    case errc::simulation_invariant:
      return "simulation-invariant";
  }
  return "unknown";
}

}  // namespace wcm
