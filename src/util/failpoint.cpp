#include "util/failpoint.hpp"

#include <charconv>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

#include "util/error.hpp"

namespace wcm::failpoint {

namespace {

/// Names compiled into library code paths.  Keep in sync with docs/API.md;
/// test_fault_injection.cpp proves every entry fires.
constexpr const char* kBuiltin[] = {
    "io.read.open",       // read_binary: open failure
    "io.read.alloc",      // read_binary: key-buffer allocation failure
    "io.read.truncated",  // read_binary: short payload read
    "io.read.checksum",   // read_binary: WCMI v2 checksum mismatch
    "io.write.fail",      // write_binary: write failure
    "trace.read.malformed",   // read_trace: malformed trace stream
    "sim.smem.alloc",         // SharedMemory ctor: backing-store allocation
    "sim.smem.invariant",     // SharedMemory::warp_read: mid-access break
    "sort.pairwise.round",    // pairwise_merge_sort: mid-round break
    "sort.multiway.round",    // multiway_merge_sort: mid-round break
    "runtime.worker.job",     // scheduler worker: break before a job body
    "runtime.cache.load",     // ResultCache::load: read failure
    "runtime.cache.store",    // ResultCache::store: write failure
    "runtime.journal.append",  // JournalWriter::append: write failure
    "runtime.journal.replay",  // replay_journal: read failure
    "telemetry.export.write",      // write_chrome_trace: export failure
    "telemetry.registry.snapshot",  // Registry::snapshot: render failure
    "telemetry.eventlog.write",  // eventlog::emit: swallowed, counts a drop
    "serve.accept",    // wcmd accept loop: drop the accepted connection
    "serve.read",      // wcmd connection reader: injected recv failure
    "serve.write",     // wcmd response writer: injected send failure
    "serve.dispatch",  // wcmd dispatcher: break before a request executes
    "serve.trace.inject",  // wcmd trace minting: degrade to an untraced req
};

struct State {
  bool armed = false;
  std::uint64_t skip = 0;
  std::int64_t times = -1;  // <0: unlimited
  std::uint64_t evaluations = 0;
  std::uint64_t triggers = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, State> points;
  std::string parsed_env;  // last WCM_FAILPOINTS value applied
  bool env_checked = false;

  Registry() {
    for (const char* name : kBuiltin) {
      points.emplace(name, State{});
    }
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

struct ParsedEntry {
  std::string name;
  std::uint64_t skip = 0;
  std::int64_t times = -1;
};

[[noreturn]] void bad_entry(const std::string& entry, const char* why) {
  throw parse_error("bad WCM_FAILPOINTS entry '" + entry + "': " + why +
                    " (expected name[=skip[:times]])");
}

/// Strict whole-string integer parse; rejects empty strings, signs where
/// not allowed, and trailing garbage.
template <typename T>
T parse_number(const std::string& entry, const std::string& text,
               const char* what) {
  if (text.empty()) {
    bad_entry(entry, what);
  }
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, err] = std::from_chars(first, last, value);
  if (err != std::errc() || ptr != last) {
    bad_entry(entry, what);
  }
  return value;
}

/// Parse one WCM_FAILPOINTS entry: name[=skip[:times]].  Malformed entries
/// (empty name, non-numeric or trailing-garbage counts) are a
/// wcm::parse_error — a typo'd fault schedule must abort the run (exit 2
/// in wcmgen), never silently arm nothing.
ParsedEntry parse_entry(const std::string& entry) {
  ParsedEntry p;
  p.name = entry;
  const auto eq = entry.find('=');
  if (eq != std::string::npos) {
    p.name = entry.substr(0, eq);
    const std::string spec = entry.substr(eq + 1);
    const auto colon = spec.find(':');
    if (colon != std::string::npos) {
      p.skip = parse_number<std::uint64_t>(entry, spec.substr(0, colon),
                                           "bad skip count");
      p.times = parse_number<std::int64_t>(entry, spec.substr(colon + 1),
                                           "bad times count");
    } else {
      p.skip = parse_number<std::uint64_t>(entry, spec, "bad skip count");
    }
  }
  if (p.name.empty()) {
    bad_entry(entry, "empty failpoint name");
  }
  return p;
}

/// Apply WCM_FAILPOINTS if its value changed since the last application.
/// Validate-then-apply: the whole value is parsed before any failpoint is
/// armed, so a malformed entry arms nothing (and parsed_env is left
/// untouched — the same error re-surfaces on the next evaluation instead
/// of being swallowed).  Caller holds the registry mutex.
std::size_t apply_env_locked(Registry& r) {
  r.env_checked = true;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* env = std::getenv("WCM_FAILPOINTS");
  const std::string value = env == nullptr ? "" : env;
  if (value == r.parsed_env) {
    return 0;
  }
  std::vector<ParsedEntry> parsed;
  std::string entry;
  const auto flush_entry = [&parsed, &entry] {
    if (!entry.empty()) {  // empty segments ("a;;b", trailing ';') are fine
      parsed.push_back(parse_entry(entry));
    }
    entry.clear();
  };
  for (const char c : value) {
    if (c == ';' || c == ',') {
      flush_entry();
    } else {
      entry.push_back(c);
    }
  }
  flush_entry();
  r.parsed_env = value;
  for (const ParsedEntry& p : parsed) {
    State& s = r.points[p.name];  // registers unknown names
    s.armed = true;
    s.skip = p.skip;
    s.times = p.times;
  }
  return parsed.size();
}

}  // namespace

bool should_fail(const char* name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (!r.env_checked) {
    apply_env_locked(r);
  }
  State& s = r.points[name];
  ++s.evaluations;
  if (!s.armed) {
    return false;
  }
  if (s.skip > 0) {
    --s.skip;
    return false;
  }
  if (s.times == 0) {
    return false;
  }
  if (s.times > 0) {
    --s.times;
  }
  ++s.triggers;
  return true;
}

void arm(const std::string& name, std::uint64_t skip, std::int64_t times) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  State& s = r.points[name];
  s.armed = true;
  s.skip = skip;
  s.times = times;
}

void disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  if (it != r.points.end()) {
    it->second.armed = false;
  }
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, s] : r.points) {
    s.armed = false;
  }
}

void reset_counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, s] : r.points) {
    s.evaluations = 0;
    s.triggers = 0;
  }
}

bool armed(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  return it != r.points.end() && it->second.armed;
}

std::uint64_t evaluations(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.evaluations;
}

std::uint64_t triggers(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.triggers;
}

std::vector<std::string> known() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& [name, s] : r.points) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

std::size_t configure_from_env() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return apply_env_locked(r);
}

scoped_arm::scoped_arm(std::string name, std::uint64_t skip,
                       std::int64_t times)
    : name_(std::move(name)) {
  arm(name_, skip, times);
}

scoped_arm::~scoped_arm() { disarm(name_); }

scoped_disarm::scoped_disarm() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, s] : r.points) {
    if (s.armed) {
      saved_.push_back({name, s.skip, s.times});
      s.armed = false;
    }
  }
}

scoped_disarm::scoped_disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  if (it != r.points.end() && it->second.armed) {
    saved_.push_back({name, it->second.skip, it->second.times});
    it->second.armed = false;
  }
}

scoped_disarm::~scoped_disarm() {
  for (const Saved& s : saved_) {
    arm(s.name, s.skip, s.times);
  }
}

}  // namespace wcm::failpoint
