#include "util/version.hpp"

// Both macros are injected per-source-file by src/CMakeLists.txt so a new
// commit only recompiles this translation unit, never the whole library.
#ifndef WCM_VERSION_STRING
#define WCM_VERSION_STRING "0.0.0"
#endif
#ifndef WCM_GIT_DESCRIBE
#define WCM_GIT_DESCRIBE "unknown"
#endif

namespace wcm {

const char* version_string() noexcept { return WCM_VERSION_STRING; }

const char* build_describe() noexcept { return WCM_GIT_DESCRIBE; }

}  // namespace wcm
