#pragma once
// Deterministic, seedable pseudo-random generation.  Every stochastic input
// in the repository flows through this generator so experiments are exactly
// reproducible across runs and platforms (std::mt19937 would also work, but
// splitmix64/xoshiro256** are faster and have a trivially portable spec).

#include <cstdint>
#include <vector>

#include "util/math.hpp"

namespace wcm {

/// splitmix64: used to seed xoshiro and as a standalone mixer.
[[nodiscard]] u64 splitmix64(u64& state) noexcept;

/// Derive the seed of logical stream `stream` from a root seed.  Parallel
/// jobs that each seed their own generator with `fork_seed(root, index)`
/// draw statistically independent sequences that depend only on (root,
/// index) — never on which worker ran the job or in what order — which is
/// what makes campaign results byte-identical across thread counts.
[[nodiscard]] u64 fork_seed(u64 root_seed, u64 stream) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna).  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit Xoshiro256(u64 seed) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept;

  /// Uniform draw from [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] u64 below(u64 bound);

  /// Split off an independent child generator for logical stream `stream`
  /// without perturbing this generator (const: forking is not a draw).
  /// Children forked from the same state with distinct streams are
  /// pairwise independent; fork(i) is a pure function of (state, i), so a
  /// set of parallel jobs seeded by fork(job_index) is reproducible
  /// regardless of worker scheduling.
  [[nodiscard]] Xoshiro256 fork(u64 stream) const noexcept;

 private:
  u64 s_[4];
};

/// Fisher–Yates shuffle driven by Xoshiro256.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace wcm
