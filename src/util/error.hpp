#pragma once
// Typed error taxonomy for the whole library.
//
// Every exception the library throws derives from `wcm::error`, which
// carries a machine-readable error code (`wcm::errc`) and an optional
// context string (source location, file path, failpoint name, ...), so
// callers can distinguish
//
//   * "you misconfigured E/b/w"            -> wcm::config_error
//   * "the input file is corrupt"          -> wcm::io_error
//   * "this flag/value cannot be parsed"   -> wcm::parse_error
//   * "the simulator broke an invariant"   -> wcm::simulation_error
//   * "a library contract was violated"    -> wcm::contract_error
//
// `config_error` and `simulation_error` derive from `contract_error`
// (a misconfiguration and a broken simulator invariant are both contract
// violations), so pre-existing `catch (const wcm::contract_error&)` sites
// keep working while new code can discriminate.  `io_error` and
// `parse_error` describe bad *data*, not program bugs, and derive from
// `wcm::error` directly.

#include <stdexcept>
#include <string>

namespace wcm {

/// Machine-readable error classes; `wcmgen` maps these onto process exit
/// codes (see docs/API.md "Error handling & exit codes").
enum class errc : int {
  contract_violation = 1,    ///< WCM_EXPECTS / WCM_ENSURES failure
  invalid_config = 2,        ///< malformed SortConfig / device mismatch
  io_failure = 3,            ///< unreadable, truncated, or corrupt file
  parse_failure = 4,         ///< unparseable text (CLI flag, trace line)
  simulation_invariant = 5,  ///< the simulator broke an internal invariant
};

/// Human-readable name of an error code (e.g. "io-failure").
[[nodiscard]] const char* to_string(errc code) noexcept;

/// Common base of every exception thrown by the library.
class error : public std::runtime_error {
 public:
  error(errc code, const std::string& what, std::string context = "")
      : std::runtime_error(context.empty() ? what
                                           : what + " (" + context + ")"),
        code_(code),
        context_(std::move(context)) {}

  [[nodiscard]] errc code() const noexcept { return code_; }
  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }

 private:
  errc code_;
  std::string context_;
};

/// Thrown when a WCM_EXPECTS / WCM_ENSURES contract is violated.
class contract_error : public error {
 public:
  explicit contract_error(const std::string& what, std::string context = "")
      : error(errc::contract_violation, what, std::move(context)) {}

 protected:
  contract_error(errc code, const std::string& what, std::string context)
      : error(code, what, std::move(context)) {}
};

/// A sort/device configuration is malformed (bad E/b/w, device mismatch).
class config_error : public contract_error {
 public:
  explicit config_error(const std::string& what, std::string context = "")
      : contract_error(errc::invalid_config, what, std::move(context)) {}
};

/// The simulator hit an internal invariant break mid-round.
class simulation_error : public contract_error {
 public:
  explicit simulation_error(const std::string& what, std::string context = "")
      : contract_error(errc::simulation_invariant, what,
                       std::move(context)) {}
};

/// A file could not be opened, read, written, or is corrupt on disk.
class io_error : public error {
 public:
  explicit io_error(const std::string& what, std::string context = "")
      : error(errc::io_failure, what, std::move(context)) {}
};

/// Text could not be parsed (a CLI flag value, a trace line, ...).
class parse_error : public error {
 public:
  explicit parse_error(const std::string& what, std::string context = "")
      : error(errc::parse_failure, what, std::move(context)) {}
};

}  // namespace wcm
