#include "util/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace wcm {

std::string format_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  WCM_EXPECTS(!columns_.empty(), "a table needs at least one column");
}

Table& Table::new_row() {
  if (!rows_.empty()) {
    WCM_EXPECTS(rows_.back().size() == columns_.size(),
                "previous row is incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::add(std::string cell) {
  WCM_EXPECTS(!rows_.empty(), "call new_row() before add()");
  WCM_EXPECTS(rows_.back().size() < columns_.size(), "row overflow");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double v, int precision) {
  return add(format_fixed(v, precision));
}
Table& Table::add(long long v) { return add(std::to_string(v)); }
Table& Table::add(unsigned long long v) { return add(std::to_string(v)); }
Table& Table::add(std::size_t v) {
  return add(static_cast<unsigned long long>(v));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::setw(static_cast<int>(width[c])) << cell;
    }
    os << '\n';
  };
  line(columns_);
  std::size_t total = 2;
  for (const auto w : width) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    line(row);
  }
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      WCM_EXPECTS(cells[c].find_first_of(",\"\n") == std::string::npos,
                  "CSV cell would need quoting");
      if (c) {
        os << ',';
      }
      os << cells[c];
    }
    os << '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

bool maybe_export_csv(const Table& table, const std::string& name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; nothing
  // in the process calls setenv.
  const char* dir = std::getenv("WCM_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  const std::filesystem::path out_dir(dir);
  std::filesystem::create_directories(out_dir);
  std::ofstream os(out_dir / (name + ".csv"));
  WCM_EXPECTS(os.is_open(), "cannot open CSV export file");
  table.write_csv(os);
  return true;
}

}  // namespace wcm
