#pragma once
// FNV-1a, the one hash every on-disk format and cache key in the project
// chains: WCMI workload checksums (workload/io.cpp), WCMC cache keys and
// file checksums (runtime/cache.cpp), and the symbolic prover's report
// digests (analyze/symbolic).  Keeping a single definition pins the digest
// values — tests/test_util_hash.cpp asserts the reference vectors, so any
// accidental change to the constants breaks loudly instead of silently
// invalidating caches and checksums.

#include <cstddef>
#include <string_view>

#include "util/math.hpp"

namespace wcm {

/// Offset basis for a fresh FNV-1a chain (64-bit variant).
inline constexpr u64 fnv_offset_basis = 14695981039346656037ULL;

/// The 64-bit FNV prime.
inline constexpr u64 fnv_prime = 1099511628211ULL;

/// FNV-1a over a byte string, seeded with `h` (chain calls to mix several
/// fields).
[[nodiscard]] inline u64 fnv1a(u64 h, const void* data,
                               std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= fnv_prime;
  }
  return h;
}

/// Chain a string's bytes (no terminator) into an FNV-1a state.
[[nodiscard]] inline u64 fnv1a(u64 h, std::string_view text) noexcept {
  return fnv1a(h, text.data(), text.size());
}

/// Hash one string from a fresh chain.
[[nodiscard]] inline u64 fnv1a(std::string_view text) noexcept {
  return fnv1a(fnv_offset_basis, text);
}

}  // namespace wcm
