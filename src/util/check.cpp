#include "util/check.hpp"

#include <sstream>

namespace wcm::detail {

void contract_failure(const char* kind, const char* cond, const char* file,
                      int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw contract_error(os.str());
}

std::string source_context(const char* cond, const char* file, int line) {
  std::ostringstream os;
  os << cond << " at " << file << ":" << line;
  return os.str();
}

}  // namespace wcm::detail
