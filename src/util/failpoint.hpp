#pragma once
// Fault-injection failpoints.
//
// A failpoint is a named hook compiled into an error-prone code path (short
// read, allocation, mid-round simulator invariant, ...).  Disarmed, a
// failpoint is a mutex-guarded counter bump; armed, it makes the
// instrumented site throw its typed error so tests — and operators chasing
// a production incident — can prove every error path actually fires.
//
// Activation:
//   * in code:   failpoint::arm("io.read.truncated");  (or scoped_arm RAII)
//   * from env:  WCM_FAILPOINTS="io.read.truncated;sim.smem.alloc=2"
//                parsed lazily on first evaluation (or explicitly via
//                configure_from_env()).  Entry syntax: name[=skip[:times]]
//                — skip the first `skip` hits, then fire `times` times
//                (default: fire on every hit).
//
// Instrumented sites use WCM_FAILPOINT(name, ErrorType, msg), which throws
// `ErrorType(msg, "failpoint <name>")` when the failpoint fires.  The full
// list of baked-in names is returned by failpoint::known() and documented
// in docs/API.md.

#include <cstdint>
#include <string>
#include <vector>

namespace wcm::failpoint {

/// Count one evaluation of `name`; true iff the failpoint is armed and
/// elects to fire (consuming one of its remaining shots).  Registers the
/// name on first sight.  Thread-safe.
[[nodiscard]] bool should_fail(const char* name);

/// Arm `name`: skip the first `skip` evaluations, then fire `times` times
/// (`times < 0` = fire forever).
void arm(const std::string& name, std::uint64_t skip = 0,
         std::int64_t times = -1);

/// Disarm `name` (counters are preserved).
void disarm(const std::string& name);

/// Disarm every failpoint (counters are preserved).
void disarm_all();

/// Reset every hit counter to zero (armed state is preserved).
void reset_counters();

/// True iff `name` is currently armed.
[[nodiscard]] bool armed(const std::string& name);

/// Times `name` has been reached (armed or not).
[[nodiscard]] std::uint64_t evaluations(const std::string& name);

/// Times `name` has actually fired.
[[nodiscard]] std::uint64_t triggers(const std::string& name);

/// All known failpoint names: the baked-in registry plus any name seen at
/// runtime, sorted.
[[nodiscard]] std::vector<std::string> known();

/// Parse the WCM_FAILPOINTS environment variable now (idempotent per
/// distinct value); returns the number of failpoints armed by it.  Called
/// lazily by should_fail(), but tests may call it directly after setenv().
std::size_t configure_from_env();

/// RAII: arm a failpoint for the current scope, disarm on exit.
class scoped_arm {
 public:
  explicit scoped_arm(std::string name, std::uint64_t skip = 0,
                      std::int64_t times = -1);
  ~scoped_arm();
  scoped_arm(const scoped_arm&) = delete;
  scoped_arm& operator=(const scoped_arm&) = delete;

 private:
  std::string name_;
};

/// RAII: disarm one failpoint (or, default-constructed, every armed
/// failpoint) for the current scope; restore the previous arming on exit.
class scoped_disarm {
 public:
  scoped_disarm();
  explicit scoped_disarm(const std::string& name);
  ~scoped_disarm();
  scoped_disarm(const scoped_disarm&) = delete;
  scoped_disarm& operator=(const scoped_disarm&) = delete;

 private:
  struct Saved {
    std::string name;
    std::uint64_t skip;
    std::int64_t times;
  };
  std::vector<Saved> saved_;
};

}  // namespace wcm::failpoint

/// Failpoint site: when `name` fires, throw `ErrorType(msg, "failpoint
/// <name>")`.  `name` must be a string literal.
#define WCM_FAILPOINT(name, ErrorType, msg)             \
  do {                                                  \
    if (::wcm::failpoint::should_fail(name)) {          \
      throw ErrorType((msg), "failpoint " name);        \
    }                                                   \
  } while (false)
