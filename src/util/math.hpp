#pragma once
// Small integer-math kit shared by every module: gcds, modular arithmetic,
// power-of-two helpers.  All functions are total over their stated domains
// and contract-checked otherwise.

#include <cstdint>
#include <cstddef>

namespace wcm {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// Greatest common divisor; gcd(0, 0) == 0 by convention.
[[nodiscard]] u64 gcd(u64 a, u64 b) noexcept;

/// True iff x is a power of two (x > 0).
[[nodiscard]] bool is_pow2(u64 x) noexcept;

/// floor(log2(x)) for x > 0.
[[nodiscard]] u32 floor_log2(u64 x);

/// log2(x) for x an exact power of two.
[[nodiscard]] u32 log2_exact(u64 x);

/// ceil(a / b) for b > 0.
[[nodiscard]] u64 ceil_div(u64 a, u64 b);

/// Non-negative remainder: ((a mod m) + m) mod m, for m > 0.
[[nodiscard]] i64 mod_floor(i64 a, i64 m);

/// Modular inverse of a modulo m (Fact 6 of the paper): exists and is unique
/// when gcd(a, m) == 1.  Contract-checked.
[[nodiscard]] u64 mod_inverse(u64 a, u64 m);

/// Solve a*x === b (mod m) when gcd(a, m) == 1 (Fact 5): the unique x in Z_m.
[[nodiscard]] u64 solve_linear_congruence(u64 a, u64 b, u64 m);

}  // namespace wcm
