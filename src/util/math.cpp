#include "util/math.hpp"

#include "util/check.hpp"

namespace wcm {

u64 gcd(u64 a, u64 b) noexcept {
  while (b != 0) {
    const u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool is_pow2(u64 x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

u32 floor_log2(u64 x) {
  WCM_EXPECTS(x > 0, "floor_log2 of zero");
  u32 r = 0;
  while (x >>= 1) {
    ++r;
  }
  return r;
}

u32 log2_exact(u64 x) {
  WCM_EXPECTS(is_pow2(x), "log2_exact requires a power of two");
  return floor_log2(x);
}

u64 ceil_div(u64 a, u64 b) {
  WCM_EXPECTS(b > 0, "division by zero");
  return (a + b - 1) / b;
}

i64 mod_floor(i64 a, i64 m) {
  WCM_EXPECTS(m > 0, "modulus must be positive");
  const i64 r = a % m;
  return r < 0 ? r + m : r;
}

namespace {

// Extended Euclid: returns g = gcd(a, b) and x with a*x === g (mod b).
struct ext_gcd_result {
  i64 g;
  i64 x;
};

ext_gcd_result ext_gcd(i64 a, i64 b) {
  i64 old_r = a, r = b;
  i64 old_x = 1, x = 0;
  while (r != 0) {
    const i64 q = old_r / r;
    const i64 tmp_r = old_r - q * r;
    old_r = r;
    r = tmp_r;
    const i64 tmp_x = old_x - q * x;
    old_x = x;
    x = tmp_x;
  }
  return {old_r, old_x};
}

}  // namespace

u64 mod_inverse(u64 a, u64 m) {
  WCM_EXPECTS(m > 0, "modulus must be positive");
  WCM_EXPECTS(gcd(a % m, m) == 1, "inverse requires gcd(a, m) == 1");
  const auto [g, x] = ext_gcd(static_cast<i64>(a % m), static_cast<i64>(m));
  WCM_ENSURES(g == 1, "extended gcd disagrees with gcd");
  return static_cast<u64>(mod_floor(x, static_cast<i64>(m)));
}

u64 solve_linear_congruence(u64 a, u64 b, u64 m) {
  // Fact 5: with gcd(a, m) == 1 the solution x = a^{-1} * b is unique in Z_m.
  const u64 inv = mod_inverse(a, m);
  __extension__ using u128 = unsigned __int128;
  return static_cast<u64>((static_cast<u128>(inv) * (b % m)) % m);
}

}  // namespace wcm
