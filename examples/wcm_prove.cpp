// wcm-prove — standalone front end of the symbolic bank-conflict prover:
// derive, without executing any trace, per-step conflict-degree bounds for
// the simulated sort engines, valid for every parameter valuation in a
// declared range, and machine-check Theorem 3's beta_2 = E and Theorem 9's
// (E^2 + E + 2Er - r^2 - r)/2 aligned counts at the paper's constructions.
//
//   wcm-prove [--engine name|all] [--w n] [--b n] [--pad n]
//             [--layout linear|xor|rotation] [--E-min n] [--E-max n]
//             [--any-E] [--ways k] [--digit-bits n] [--json]
//             [--trace file.wcmt]
//
// With --trace (requires a single --engine), the recorded trace is also
// replayed through the DMM and every step is certified against the derived
// bound — the static/dynamic cross-check the differential fuzzer runs on
// every trial.
//
// Exit codes (documented in docs/LINT.md):
//   0 every bound derived, theorems reproduced, trace (if any) certified
//   1 findings were reported (unproved-access, symbolic-divergence,
//     theorem-divergence)
//   2 usage error
//   3 the --trace file was missing, unreadable, or corrupt
//   5 internal error

#include <charconv>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/symbolic/prove.hpp"
#include "gpusim/layout.hpp"
#include "gpusim/trace.hpp"
#include "util/error.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcm-prove — symbolic bank-conflict bounds for the simulated sort engines

usage: wcm-prove [--engine name|all] [--w n] [--b n] [--pad n]
                 [--layout linear|xor|rotation] [--E-min n] [--E-max n]
                 [--any-E] [--ways k] [--digit-bits n] [--json]
                 [--trace file.wcmt]

flags:
  --engine name   blocksort, block-merge, pairwise, multiway, bitonic,
                  radix, scan, shearsort, or all (default all)
  --w n           warp width / bank count (default 32)
  --b n           block size in threads (default 64)
  --pad n         padded layout: n words after every w (default 0)
  --layout kind   bank permutation: linear, xor, or rotation
                  (default linear; gpusim/layout.hpp)
  --E-min n       lower end of the symbolic E range (default 3)
  --E-max n       upper end (default w - 1)
  --any-E         drop the E-odd congruence from the declared range
  --ways k        multiway fan-in (default 4)
  --digit-bits n  radix digit width (default 4)
  --json          machine-readable report (stable field order, integers
                  only; ends with an fnv1a digest of the body)
  --trace f.wcmt  additionally certify a recorded trace against the
                  derived bounds (requires a single --engine)
  --help          print this message

The IR grammar, the congruence/interval domain, the proof methods, and the
finding rules are documented in docs/LINT.md; the theorem instances map to
the paper in docs/THEORY.md.

exit codes: 0 proved clean, 1 findings, 2 usage, 3 bad trace file,
            5 internal error
)";

u32 parse_u32(const std::string& flag, const std::string& text) {
  u32 value = 0;
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || err != std::errc() ||
      ptr != text.data() + text.size()) {
    throw parse_error("invalid value '" + text + "' for " + flag +
                      " (expected an unsigned integer)");
  }
  return value;
}

int run(int argc, char** argv) {
  analyze::symbolic::ProveOptions opts;
  std::string engine = "all";
  std::string trace_path;
  const auto need_value = [&](int i, const std::string& flag) {
    if (i + 1 >= argc) {
      throw parse_error(flag + " requires a value");
    }
    return std::string(argv[i + 1]);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--any-E") {
      opts.any_e = true;
    } else if (arg == "--engine") {
      engine = need_value(i, arg);
      ++i;
    } else if (arg == "--trace") {
      trace_path = need_value(i, arg);
      ++i;
    } else if (arg == "--w") {
      opts.w = parse_u32(arg, need_value(i, arg));
      ++i;
    } else if (arg == "--b") {
      opts.b = parse_u32(arg, need_value(i, arg));
      ++i;
    } else if (arg == "--pad") {
      opts.pad = parse_u32(arg, need_value(i, arg));
      ++i;
    } else if (arg == "--layout") {
      opts.layout = gpusim::parse_layout_kind(need_value(i, arg));
      ++i;
    } else if (arg == "--E-min") {
      opts.e_min = parse_u32(arg, need_value(i, arg));
      ++i;
    } else if (arg == "--E-max") {
      opts.e_max = parse_u32(arg, need_value(i, arg));
      ++i;
    } else if (arg == "--ways") {
      opts.ways = parse_u32(arg, need_value(i, arg));
      ++i;
    } else if (arg == "--digit-bits") {
      opts.digit_bits = parse_u32(arg, need_value(i, arg));
      ++i;
    } else {
      throw parse_error(
          "unknown argument '" + arg +
          "' (valid: --engine, --w, --b, --pad, --layout, --E-min, --E-max, "
          "--any-E, --ways, --digit-bits, --json, --trace, --help)");
    }
  }
  if (!trace_path.empty() && engine == "all") {
    throw parse_error("--trace requires a single --engine to certify against");
  }

  const std::vector<std::string> engines =
      engine == "all" ? analyze::symbolic::all_engines()
                      : std::vector<std::string>{engine};
  analyze::symbolic::ProveReport report =
      analyze::symbolic::prove(engines, opts);

  if (!trace_path.empty()) {
    std::ifstream is(trace_path);
    if (!is) {
      throw io_error("cannot open trace file", trace_path);
    }
    gpusim::Trace trace;
    try {
      trace = gpusim::read_trace(is);
    } catch (const parse_error& e) {
      throw io_error(std::string("corrupt trace: ") + e.what(), trace_path);
    }
    analyze::symbolic::append_findings(
        report, analyze::symbolic::certify_trace(trace, report.engines.at(0)));
  }

  if (opts.json) {
    analyze::symbolic::render_json(std::cout, report);
  } else {
    analyze::symbolic::render_text(std::cout, report);
  }
  return report.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const wcm::parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n"
              << "(run 'wcm-prove --help' for the full synopsis)\n";
    return 2;
  } catch (const wcm::contract_error& e) {
    // Shape contracts (w a power of two, b a multiple of w, ...) are
    // violated by flag values, so they are usage errors here.
    std::cerr << "usage error: " << e.what() << "\n"
              << "(run 'wcm-prove --help' for the full synopsis)\n";
    return 2;
  } catch (const wcm::io_error& e) {
    std::cerr << "input error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 5;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return 5;
  }
}
