// Trace explorer: record the shared-memory access stream of one block sort
// on an adversarial tile, optionally save it (WCMT text format), and
// re-price the identical stream under several padded layouts — the offline
// "what would this cost under layout X" workflow.
//
//   ./trace_explorer [E] [b] [trace_out.wcmt]

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/generator.hpp"
#include "gpusim/trace.hpp"
#include "sort/blocksort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main(int argc, char** argv) {
  using namespace wcm;

  sort::SortConfig cfg{15, 128, 32};
  if (argc > 1) {
    cfg.E = static_cast<u32>(std::atoi(argv[1]));
  }
  if (argc > 2) {
    cfg.b = static_cast<u32>(std::atoi(argv[2]));
  }
  cfg.validate();

  // One adversarial tile: take the first base tile of a worst-case input
  // (shuffled family, so the block sort sees realistic data).
  core::AttackOptions opts;
  opts.tile_shuffle_seed = 9;
  const auto full = core::worst_case_input(cfg.tile() * 2, cfg, opts);
  std::vector<dmm::word> tile(full.begin(),
                              full.begin() + static_cast<std::ptrdiff_t>(
                                                 cfg.tile()));

  gpusim::SharedMemory shm(cfg.w, cfg.tile());
  gpusim::TraceRecorder recorder(cfg.w);
  shm.attach_trace(&recorder);
  gpusim::KernelStats stats;
  sort::simulate_block_sort(shm, tile, cfg, stats);
  shm.attach_trace(nullptr);

  const auto& trace = recorder.trace();
  std::cout << "recorded " << trace.steps.size() << " warp steps, "
            << trace.total_accesses() << " accesses of one block sort ("
            << cfg.to_string() << ")\n\n";

  Table t({"padding", "serialization", "replays", "replays/access"});
  for (const u32 pad : {0u, 1u, 2u, 3u}) {
    const auto stats_for =
        gpusim::replay_stats(trace, gpusim::SharedLayout{cfg.w, pad});
    t.new_row()
        .add(static_cast<std::size_t>(pad))
        .add(stats_for.serialization_cycles)
        .add(stats_for.replays)
        .add(static_cast<double>(stats_for.replays) /
                 static_cast<double>(stats_for.requests),
             4);
  }
  t.print(std::cout);

  if (argc > 3) {
    std::ofstream os(argv[3]);
    gpusim::write_trace(os, trace);
    std::cout << "\ntrace written to " << argv[3] << "\n";
  }
  return 0;
}
