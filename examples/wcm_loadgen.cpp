// wcm-loadgen — load generator and SLO harness for the wcmd daemon
// (docs/SERVE.md).
//
// Two modes:
//
//   script:  --script requests.jsonl [--out responses.jsonl]
//            send each line in lockstep and record the response lines —
//            the byte-compare primitive of the serve_ci gate (the same
//            script must produce byte-identical output cold, warm, and
//            at any WCM_THREADS).
//
//   mix:     --requests n [--conns c] [--rate rps] [--seed s]
//            a seeded, deterministic mix of generate/prove requests over
//            a small parameter pool (so repeats hit the response cache).
//            Closed-loop by default (each connection waits for its
//            response before sending the next); --rate switches to
//            open-loop pacing with pipelined responses.  Reports p50/p90/
//            p99/max latency, throughput, and the daemon's cache hit rate.
//
// Daemon orchestration (both modes):
//   --spawn wcmd-path   fork/exec a daemon on --socket first, wait for
//                       its socket, and reap it at the end
//   --data-dir dir      forwarded to the spawned daemon
//   --term-after n      SIGTERM the spawned daemon after n responses
//                       (the drain-under-load scenario)
//   --expect-daemon-exit n   require that exit code from the spawned
//                       daemon (default 0)
//   --drain             send a `drain` op when done (stops the daemon)
//   --require-counter name:min[,name:min...]   fetch `metrics` before
//                       draining and require each named counter sum
//   --metrics-out file  save the fetched metrics JSON
//   --out file          write the report (mix) or responses (script)
//
// Exit codes: 0 ok, 1 a check failed (--require-counter /
// --expect-daemon-exit, or any request answered with an error in script
// mode), 2 usage error, 3 connection/file error.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcm-loadgen — load generator and SLO harness for wcmd (docs/SERVE.md)

usage: wcm-loadgen [--socket path|@name]
                   (--script requests.jsonl | --requests n)
                   [--conns c] [--rate rps] [--seed s] [--tenant name]
                   [--spawn wcmd-path] [--data-dir dir] [--term-after n]
                   [--expect-daemon-exit n] [--drain]
                   [--require-counter name:min[,name:min...]]
                   [--metrics-out file] [--out file]

exit codes: 0 ok, 1 check failed, 2 usage, 3 connection/file error
)";

// ---- deterministic request mix -------------------------------------------

/// splitmix64: tiny, seedable, and identical everywhere — the mix for a
/// given (--seed, --conns, --requests) is reproducible bit-for-bit.
struct Rng {
  u64 state;
  u64 next() {
    state += 0x9e3779b97f4a7c15ULL;
    u64 z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  u64 below(u64 bound) { return next() % bound; }
};

/// One request from the pool.  The pool is deliberately small (30 distinct
/// generate cells + 2 prove cells) so a run of hundreds of requests mostly
/// re-asks answered questions — that is what exercises the cache and the
/// single-flight coalescer rather than raw compute.
std::string mix_request(Rng& rng, const std::string& tenant, u64 serial) {
  std::ostringstream os;
  const std::string id = "r" + std::to_string(serial);
  if (rng.below(16) == 0) {
    const bool pairwise = rng.below(2) == 0;
    os << R"({"id":")" << id << R"(","op":"prove","params":{"b":64,)"
       << R"("engine":")" << (pairwise ? "pairwise" : "shearsort")
       << R"(","w":32},"tenant":")" << tenant << R"("})";
    return os.str();
  }
  static constexpr u32 kEs[] = {5, 7, 9, 11, 13};
  const u32 e = kEs[rng.below(5)];
  const u64 k = 1 + rng.below(3);
  const u64 seed = 1 + rng.below(2);
  os << R"({"id":")" << id << R"(","op":"generate","params":{"E":)" << e
     << R"(,"b":64,"k":)" << k << R"(,"seed":)" << seed
     << R"(},"tenant":")" << tenant << R"("})";
  return os.str();
}

// ---- flag parsing ---------------------------------------------------------

struct Args {
  std::map<std::string, std::string> named;

  [[nodiscard]] bool flag(const std::string& name) const {
    return named.count("--" + name) > 0;
  }
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback : it->second;
  }
  [[nodiscard]] u64 get_u64(const std::string& name, u64 fallback,
                            u64 max = std::numeric_limits<u64>::max()) const {
    const auto it = named.find("--" + name);
    if (it == named.end()) {
      return fallback;
    }
    u64 value = 0;
    const std::string& text = it->second;
    const auto [ptr, err] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (text.empty() || err != std::errc() ||
        ptr != text.data() + text.size() || value > max) {
      throw parse_error("invalid value '" + text + "' for --" + name +
                        " (expected an unsigned integer <= " +
                        std::to_string(max) + ")");
    }
    return value;
  }
};

Args parse(int argc, char** argv) {
  static const std::vector<std::string> kKnown = {
      "--socket",     "--script",     "--requests",    "--conns",
      "--rate",       "--seed",       "--tenant",      "--spawn",
      "--data-dir",   "--term-after", "--expect-daemon-exit",
      "--drain",      "--require-counter", "--metrics-out", "--out",
      "--help"};
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string key = argv[i];
    if (std::find(kKnown.begin(), kKnown.end(), key) == kKnown.end()) {
      throw parse_error("unknown flag '" + key +
                        "' (run 'wcm-loadgen --help' for the synopsis)");
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "";
    }
  }
  return args;
}

// ---- response inspection --------------------------------------------------

bool response_ok(const std::string& line) {
  try {
    const json::Value doc = json::parse(line);
    const auto& obj = doc.as_object();
    const auto it = obj.find("ok");
    return it != obj.end() && it->second.as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

/// Sum of every counter row named `name` in a metrics response, across all
/// label sets (mirrors Snapshot::counter_total on the client side).
u64 counter_total(const json::Value& metrics, const std::string& name) {
  u64 total = 0;
  const auto& obj = metrics.as_object();
  const auto rows = obj.find("metrics");
  if (rows == obj.end()) {
    return 0;
  }
  for (const json::Value& row : rows->second.as_array()) {
    const auto& r = row.as_object();
    const auto n = r.find("name");
    const auto kind = r.find("kind");
    const auto value = r.find("value");
    if (n != r.end() && kind != r.end() && value != r.end() &&
        n->second.as_string() == name &&
        kind->second.as_string() == "counter") {
      total += value->second.as_u64();
    }
  }
  return total;
}

// ---- daemon orchestration -------------------------------------------------

struct Daemon {
  pid_t pid = -1;

  void spawn(const std::string& binary, const std::string& socket,
             const std::string& data_dir) {
    pid = ::fork();
    WCM_CHECK_TYPED(pid >= 0, io_error, "fork() failed");
    if (pid == 0) {
      std::vector<const char*> argv = {binary.c_str(), "--socket",
                                       socket.c_str(), "--quiet"};
      if (!data_dir.empty()) {
        argv.push_back("--data-dir");
        argv.push_back(data_dir.c_str());
      }
      argv.push_back(nullptr);
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-const-cast)
      ::execv(binary.c_str(), const_cast<char* const*>(argv.data()));
      std::cerr << "wcm-loadgen: exec('" << binary << "') failed\n";
      ::_exit(127);
    }
  }

  [[nodiscard]] int wait_exit() const {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (WIFEXITED(status)) {
      return WEXITSTATUS(status);
    }
    return WIFSIGNALED(status) ? 128 + WTERMSIG(status) : -1;
  }
};

// ---- the two modes --------------------------------------------------------

int run_script(const Args& a, const std::string& socket) {
  const std::string script = a.get("script", "");
  std::ifstream in(script);
  if (!in) {
    throw io_error("cannot open script file", script);
  }
  std::ofstream out;
  const std::string out_path = a.get("out", "");
  if (!out_path.empty()) {
    out.open(out_path);
    if (!out) {
      throw io_error("cannot open output file", out_path);
    }
  }
  serve::Client client = serve::connect_with_retry(socket, 5000);
  u64 sent = 0;
  u64 errors = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const std::string response = client.roundtrip(line);
    ++sent;
    if (!response_ok(response)) {
      ++errors;
    }
    if (out.is_open()) {
      out << response << "\n";
    } else {
      std::cout << response << "\n";
    }
  }
  std::cerr << "wcm-loadgen: script " << script << ": " << sent
            << " requests, " << errors << " errors\n";
  return errors == 0 ? 0 : 1;
}

struct ConnReport {
  std::vector<double> latencies_ms;
  u64 ok = 0;
  u64 errors = 0;
  u64 dropped = 0;  // EOF before a response (daemon drained mid-run)
};

/// Closed loop: send, wait, repeat.  Open loop (`interval > 0`): a pacing
/// writer plus this thread's reader half, latencies matched FIFO (the
/// protocol guarantees per-connection response order).
ConnReport run_conn(const std::string& socket, const std::string& tenant,
                    u64 seed, u64 conn_index, u64 requests,
                    double interval_s, std::atomic<u64>& responded,
                    const std::function<void()>& on_response) {
  ConnReport report;
  serve::Client client = serve::connect_with_retry(socket, 5000);
  Rng rng{seed * 0x100000001b3ULL + conn_index};
  using clock = std::chrono::steady_clock;
  std::mutex mu;
  std::vector<clock::time_point> sent_at;  // FIFO of in-flight send times
  std::atomic<bool> writer_failed{false};

  const auto record = [&](const std::string& response) {
    clock::time_point started;
    {
      std::lock_guard<std::mutex> lock(mu);
      started = sent_at.front();
      sent_at.erase(sent_at.begin());
    }
    const std::chrono::duration<double, std::milli> took =
        clock::now() - started;
    report.latencies_ms.push_back(took.count());
    if (response_ok(response)) {
      ++report.ok;
    } else {
      ++report.errors;
    }
    responded.fetch_add(1, std::memory_order_relaxed);
    on_response();
  };

  if (interval_s <= 0) {  // closed loop
    for (u64 i = 0; i < requests; ++i) {
      const std::string request = mix_request(rng, tenant, i);
      {
        std::lock_guard<std::mutex> lock(mu);
        sent_at.push_back(clock::now());
      }
      try {
        client.send(request);
        const auto response = client.recv_line();
        if (!response) {
          report.dropped = requests - i;
          break;
        }
        record(*response);
      } catch (const io_error&) {
        report.dropped = requests - i;
        break;
      }
    }
    return report;
  }

  // Open loop: pace sends on a side thread; read pipelined responses here.
  std::thread writer([&] {
    auto next = clock::now();
    for (u64 i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(next);
      next += std::chrono::duration_cast<clock::duration>(
          std::chrono::duration<double>(interval_s));
      const std::string request = mix_request(rng, tenant, i);
      {
        std::lock_guard<std::mutex> lock(mu);
        sent_at.push_back(clock::now());
      }
      try {
        client.send(request);
      } catch (const io_error&) {
        writer_failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  u64 received = 0;
  while (received < requests) {
    std::optional<std::string> response;
    try {
      response = client.recv_line();
    } catch (const io_error&) {
      response.reset();
    }
    if (!response) {
      break;
    }
    record(*response);
    ++received;
  }
  writer.join();
  report.dropped = requests - received;
  return report;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int run_mix(const Args& a, const std::string& socket, Daemon* daemon) {
  const u64 requests = a.get_u64("requests", 64, 1u << 20);
  const u64 conns = std::max<u64>(1, a.get_u64("conns", 4, 256));
  const u64 seed = a.get_u64("seed", 1);
  const u64 rate = a.get_u64("rate", 0, 1u << 20);  // 0 = closed loop
  const u64 term_after = a.get_u64("term-after", 0);
  const std::string tenant = a.get("tenant", "default");
  // Total rate split across connections; per-conn request counts split
  // with the remainder on the first connections.
  const double interval_s =
      rate == 0 ? 0.0
                : static_cast<double>(conns) / static_cast<double>(rate);

  std::atomic<u64> responded{0};
  std::atomic<bool> termed{false};
  const auto on_response = [&] {
    if (term_after == 0 || daemon == nullptr || daemon->pid <= 0) {
      return;
    }
    if (responded.load(std::memory_order_relaxed) >= term_after &&
        !termed.exchange(true, std::memory_order_relaxed)) {
      ::kill(daemon->pid, SIGTERM);
    }
  };

  using clock = std::chrono::steady_clock;
  const auto started = clock::now();
  std::vector<ConnReport> reports(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (u64 c = 0; c < conns; ++c) {
    const u64 share = requests / conns + (c < requests % conns ? 1 : 0);
    threads.emplace_back([&, c, share] {
      try {
        reports[c] = run_conn(socket, tenant, seed, c, share, interval_s,
                              responded, on_response);
      } catch (const std::exception& e) {
        std::cerr << "wcm-loadgen: conn " << c << ": " << e.what() << "\n";
        reports[c].dropped = share;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const std::chrono::duration<double> wall = clock::now() - started;

  std::vector<double> latencies;
  u64 ok = 0;
  u64 errors = 0;
  u64 dropped = 0;
  for (const ConnReport& r : reports) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ok += r.ok;
    errors += r.errors;
    dropped += r.dropped;
  }
  std::sort(latencies.begin(), latencies.end());
  const double answered = static_cast<double>(ok + errors);
  const double qps = wall.count() > 0 ? answered / wall.count() : 0.0;

  // Fetch cache counters before any drain takes the daemon away.  Skipped
  // after --term-after: the daemon is already gone.
  u64 cache_hit = 0;
  u64 cache_miss = 0;
  bool have_metrics = false;
  std::string metrics_line;
  if (term_after == 0) {
    try {
      serve::Client admin(socket);
      metrics_line = admin.roundtrip(R"({"op":"metrics"})");
      const json::Value doc = json::parse(metrics_line);
      const auto& result = doc.as_object().at("result");
      cache_hit = counter_total(result, "serve.cache.hit");
      cache_miss = counter_total(result, "serve.cache.miss");
      have_metrics = true;
    } catch (const std::exception& e) {
      std::cerr << "wcm-loadgen: metrics fetch failed: " << e.what() << "\n";
    }
  }
  const std::string metrics_out = a.get("metrics-out", "");
  if (!metrics_out.empty() && have_metrics) {
    std::ofstream os(metrics_out);
    if (!os) {
      throw io_error("cannot open metrics output file", metrics_out);
    }
    os << metrics_line << "\n";
  }

  // The report: strict JSON, one object, stable key order (std::map).
  json::Object report;
  {
    json::Object cache;
    cache.emplace("hit", json::Value(static_cast<double>(cache_hit)));
    const double lookups = static_cast<double>(cache_hit + cache_miss);
    cache.emplace("hit_rate",
                  json::Value(lookups > 0
                                  ? static_cast<double>(cache_hit) / lookups
                                  : 0.0));
    cache.emplace("miss", json::Value(static_cast<double>(cache_miss)));
    report.emplace("cache", json::Value(std::move(cache)));
  }
  report.emplace("conns", json::Value(static_cast<double>(conns)));
  report.emplace("dropped", json::Value(static_cast<double>(dropped)));
  report.emplace("errors", json::Value(static_cast<double>(errors)));
  {
    json::Object lat;
    lat.emplace("max", json::Value(latencies.empty() ? 0.0
                                                     : latencies.back()));
    lat.emplace("p50", json::Value(percentile(latencies, 0.50)));
    lat.emplace("p90", json::Value(percentile(latencies, 0.90)));
    lat.emplace("p99", json::Value(percentile(latencies, 0.99)));
    report.emplace("latency_ms", json::Value(std::move(lat)));
  }
  report.emplace("loop", json::Value(std::string(rate == 0 ? "closed"
                                                           : "open")));
  report.emplace("ok", json::Value(static_cast<double>(ok)));
  report.emplace("qps", json::Value(qps));
  report.emplace("requests", json::Value(static_cast<double>(requests)));
  report.emplace("seed", json::Value(static_cast<double>(seed)));
  report.emplace("wall_seconds", json::Value(wall.count()));
  const std::string rendered = json::to_text(json::Value(std::move(report)));

  const std::string out = a.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      throw io_error("cannot open report file", out);
    }
    os << rendered << "\n";
  }
  std::cout << rendered << "\n";

  int code = 0;
  // --require-counter name:min[,...] — each named counter sum must reach
  // its minimum (serve_ci asserts dedup/cache behavior through this).
  const std::string require = a.get("require-counter", "");
  if (!require.empty()) {
    if (!have_metrics) {
      std::cerr << "wcm-loadgen: --require-counter needs metrics (daemon "
                   "already terminated?)\n";
      code = 1;
    }
    std::istringstream specs(require);
    std::string spec;
    while (have_metrics && std::getline(specs, spec, ',')) {
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos) {
        throw parse_error("bad --require-counter entry '" + spec +
                          "' (expected name:min)");
      }
      const std::string name = spec.substr(0, colon);
      const u64 min = std::stoull(spec.substr(colon + 1));
      const json::Value doc = json::parse(metrics_line);
      const u64 total = counter_total(doc.as_object().at("result"), name);
      if (total < min) {
        std::cerr << "wcm-loadgen: counter " << name << " = " << total
                  << " < required " << min << "\n";
        code = 1;
      }
    }
  }
  return code;
}

int run(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.flag("help")) {
    std::cout << kUsage;
    return 0;
  }
  const std::string socket = a.get("socket", "@wcmd");
  const bool script_mode = a.flag("script");
  if (!script_mode && !a.flag("requests")) {
    throw parse_error("one of --script or --requests is required");
  }

  Daemon daemon;
  const std::string spawn = a.get("spawn", "");
  if (!spawn.empty()) {
    daemon.spawn(spawn, socket, a.get("data-dir", ""));
  }

  int code = 0;
  try {
    code = script_mode ? run_script(a, socket)
                       : run_mix(a, socket, spawn.empty() ? nullptr : &daemon);
  } catch (...) {
    if (daemon.pid > 0) {
      ::kill(daemon.pid, SIGTERM);
      (void)daemon.wait_exit();
    }
    throw;
  }

  if (a.flag("drain") && a.get_u64("term-after", 0) == 0) {
    try {
      serve::Client admin(socket);
      (void)admin.roundtrip(R"({"op":"drain"})");
    } catch (const io_error& e) {
      std::cerr << "wcm-loadgen: drain failed: " << e.what() << "\n";
      code = std::max(code, 1);
    }
  }
  if (daemon.pid > 0) {
    const int daemon_code = daemon.wait_exit();
    const auto expected =
        static_cast<int>(a.get_u64("expect-daemon-exit", 0, 255));
    std::cerr << "wcm-loadgen: daemon exited " << daemon_code << "\n";
    if (daemon_code != expected) {
      std::cerr << "wcm-loadgen: expected daemon exit " << expected << "\n";
      code = std::max(code, 1);
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const io_error& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
