// wcm-top — live terminal view of a running wcmd daemon (docs/SERVE.md).
//
//   wcm-top [--socket path|@name] [--interval-ms n] [--once] [--no-clear]
//           [--timeout-ms n]
//
// Polls the daemon's `metrics` and `health` admin ops over its socket and
// renders one frame per interval: request rate (qps, from the
// serve.requests delta between frames), p50/p99 latency (interpolated
// from the serve.latency_ms histogram buckets), cache hit rate, queue
// depth, quarantine count, shed/drop tallies, and the observability
// health counters (dropped spans, dropped event-log lines).  `--once`
// prints a single frame and exits — that is how the obs_ci gate and
// scripts consume it; `--no-clear` skips the ANSI clear for dumb
// terminals and logs.
//
// Exit codes: 0 ok, 2 usage error, 3 cannot connect / protocol error.

#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/math.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcm-top — live terminal view of a running wcmd daemon (docs/SERVE.md)

usage: wcm-top [--socket path|@name]  daemon socket (default @wcmd)
               [--interval-ms n]      refresh period (default 1000)
               [--once]               print one frame and exit
               [--no-clear]           no ANSI clear between frames
               [--timeout-ms n]       connect timeout (default 2000)

exit codes: 0 ok, 2 usage, 3 cannot connect / protocol error
)";

u64 parse_u64_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) {
      throw std::invalid_argument("trailing");
    }
    return v;
  } catch (const std::exception&) {
    throw parse_error("invalid value '" + text + "' for " + flag +
                      " (expected an unsigned integer)");
  }
}

/// Result-side JSON of one successful admin roundtrip; throws io_error on
/// a protocol or daemon-side error.
json::Value admin_result(serve::Client& client, const std::string& op) {
  const std::string reply =
      client.roundtrip("{\"id\":\"top\",\"op\":\"" + op + "\"}");
  const json::Value doc = json::parse(reply);
  const json::Object& fields = doc.as_object();
  const auto ok = fields.find("ok");
  if (ok == fields.end() || !ok->second.as_bool()) {
    throw io_error("daemon refused the " + op + " request", reply);
  }
  return fields.at("result");
}

/// The parsed slice of one metrics snapshot wcm-top renders.
struct Frame {
  double requests = 0;
  double responses = 0;
  double cache_hit = 0;
  double cache_miss = 0;
  double shed = 0;
  double queue_depth = 0;
  double quarantined = 0;
  double dropped_spans = 0;
  double eventlog_dropped = 0;
  double trace_invalid = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double latency_count = 0;
  std::chrono::steady_clock::time_point at;
};

/// Linear-interpolated quantile over the serve.latency_ms buckets
/// (mirrors telemetry::bucket_quantile, which lives daemon-side).
double quantile(const std::vector<double>& bounds,
                const std::vector<double>& counts, double q) {
  double total = 0;
  for (const double c : counts) {
    total += c;
  }
  if (total <= 0 || bounds.empty()) {
    return 0.0;
  }
  const double rank = std::max(1.0, q * total);
  double seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    if (i >= bounds.size()) {
      return bounds.back();  // overflow bucket clamps
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double inside = counts[i] > 0 ? (rank - seen) / counts[i] : 0.0;
    return lo + inside * (bounds[i] - lo);
  }
  return bounds.back();
}

Frame parse_frame(const json::Value& metrics, const json::Value& health) {
  Frame f;
  f.at = std::chrono::steady_clock::now();
  for (const json::Value& row : metrics.as_object().at("metrics").as_array()) {
    const json::Object& m = row.as_object();
    const std::string& name = m.at("name").as_string();
    const std::string& kind = m.at("kind").as_string();
    if (kind == "histogram") {
      if (name != "serve.latency_ms") {
        continue;
      }
      std::vector<double> bounds;
      std::vector<double> counts;
      for (const json::Value& b : m.at("buckets").as_array()) {
        const json::Object& bucket = b.as_object();
        const json::Value& le = bucket.at("le");
        if (le.is_number()) {
          bounds.push_back(le.as_double());
        }
        counts.push_back(bucket.at("count").as_double());
      }
      f.latency_count = m.at("count").as_double();
      f.p50_ms = quantile(bounds, counts, 0.50);
      f.p99_ms = quantile(bounds, counts, 0.99);
      continue;
    }
    const double value = m.at("value").as_double();
    // Counters may be split across label sets; sum them.
    if (name == "serve.requests") {
      f.requests += value;
    } else if (name == "serve.responses") {
      f.responses += value;
    } else if (name == "serve.cache.hit") {
      f.cache_hit += value;
    } else if (name == "serve.cache.miss") {
      f.cache_miss += value;
    } else if (name == "serve.shed") {
      f.shed += value;
    } else if (name == "runtime.quarantine.jobs") {
      f.quarantined += value;
    } else if (name == "telemetry.dropped_spans") {
      f.dropped_spans += value;
    } else if (name == "telemetry.eventlog.dropped") {
      f.eventlog_dropped += value;
    } else if (name == "serve.trace.invalid") {
      f.trace_invalid += value;
    }
  }
  f.queue_depth = health.as_object().at("queue").as_double();
  return f;
}

void render(std::ostream& os, const std::string& socket, const Frame& now,
            const Frame* prev) {
  double qps = 0.0;
  if (prev != nullptr) {
    const double dt =
        std::chrono::duration<double>(now.at - prev->at).count();
    if (dt > 0) {
      qps = (now.requests - prev->requests) / dt;
    }
  }
  const double lookups = now.cache_hit + now.cache_miss;
  const double hit_rate = lookups > 0 ? now.cache_hit / lookups : 0.0;
  os << "wcm-top " << socket << "\n"
     << "  qps        " << qps << "\n"
     << "  requests   " << now.requests << "  responses " << now.responses
     << "  shed " << now.shed << "\n"
     << "  latency    p50 " << now.p50_ms << " ms  p99 " << now.p99_ms
     << " ms  (n=" << now.latency_count << ")\n"
     << "  cache      hit-rate " << hit_rate << "  (hit " << now.cache_hit
     << " / miss " << now.cache_miss << ")\n"
     << "  queue      depth " << now.queue_depth << "\n"
     << "  quarantine " << now.quarantined << "\n"
     << "  obs-health dropped-spans " << now.dropped_spans
     << "  eventlog-dropped " << now.eventlog_dropped << "  trace-invalid "
     << now.trace_invalid << "\n";
  os.flush();
}

int run(int argc, char** argv) {
  std::string socket = "@wcmd";
  u64 interval_ms = 1000;
  u64 timeout_ms = 2000;
  bool once = false;
  bool no_clear = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--once") {
      once = true;
      continue;
    }
    if (arg == "--no-clear") {
      no_clear = true;
      continue;
    }
    if (i + 1 >= argc) {
      throw parse_error("flag " + arg + " requires a value");
    }
    const std::string value = argv[++i];
    if (arg == "--socket") {
      socket = value;
    } else if (arg == "--interval-ms") {
      interval_ms = parse_u64_flag(arg, value);
      if (interval_ms == 0) {
        throw parse_error("--interval-ms must be >= 1");
      }
    } else if (arg == "--timeout-ms") {
      timeout_ms = parse_u64_flag(arg, value);
    } else {
      throw parse_error("unknown flag '" + arg +
                        "' (run 'wcm-top --help' for the synopsis)");
    }
  }

  serve::Client client = serve::connect_with_retry(socket, timeout_ms);
  Frame prev;
  bool have_prev = false;
  for (;;) {
    const json::Value metrics = admin_result(client, "metrics");
    const json::Value health = admin_result(client, "health");
    const Frame frame = parse_frame(metrics, health);
    if (!no_clear) {
      std::cout << "\x1b[2J\x1b[H";
    }
    render(std::cout, socket, frame, have_prev ? &prev : nullptr);
    if (once) {
      return 0;
    }
    prev = frame;
    have_prev = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
