// wcmgen — command-line front end for the library: generate, inspect, and
// measure adversarial inputs without writing any C++.
//
//   wcmgen generate  --E 15 --b 512 [--k 8] [--seed S] [--strategy name]
//                    [--intra] [--rounds m] [--out file.wcmi] [--csv]
//   wcmgen evaluate  --E 15 [--w 32] [--side L|R] [--strategy name]
//   wcmgen sort      --E 15 --b 512 [--k 6] [--input kind] [--device name]
//                    [--library thrust|mgpu] [--padding p] [--seed S]
//                    [--algorithm pairwise|multiway|bitonic|radix] [--json]
//   wcmgen visualize --E 7 [--w 16] [--strategy name]
//
// Every subcommand prints to stdout; `generate --out` additionally writes
// the WCMI binary (plus .csv with --csv).

#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "analysis/json_export.hpp"
#include "analysis/series.hpp"
#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "sort/bitonic.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/radix.hpp"
#include "workload/inputs.hpp"
#include "workload/inversions.hpp"
#include "workload/io.hpp"

namespace {

using namespace wcm;

struct Args {
  std::map<std::string, std::string> named;
  bool flag(const std::string& name) const { return named.count("--" + name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback : it->second;
  }
  u64 get_u64(const std::string& name, u64 fallback) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback : std::stoull(it->second);
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0 && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "";
    }
  }
  return args;
}

core::AlignmentStrategy parse_strategy(const std::string& s) {
  if (s == "back-to-front") {
    return core::AlignmentStrategy::back_to_front;
  }
  if (s == "outside-in") {
    return core::AlignmentStrategy::outside_in;
  }
  return core::AlignmentStrategy::front_to_back;
}

sort::SortConfig config_from(const Args& a) {
  sort::SortConfig cfg;
  cfg.E = static_cast<u32>(a.get_u64("E", 15));
  cfg.b = static_cast<u32>(a.get_u64("b", 512));
  cfg.w = static_cast<u32>(a.get_u64("w", 32));
  cfg.padding = static_cast<u32>(a.get_u64("padding", 0));
  cfg.validate();
  return cfg;
}

gpusim::Device device_from(const Args& a) {
  const std::string name = a.get("device", "m4000");
  if (name == "2080ti" || name == "rtx2080ti") {
    return gpusim::rtx_2080ti();
  }
  return gpusim::quadro_m4000();
}

int cmd_generate(const Args& a) {
  const auto cfg = config_from(a);
  const u32 k = static_cast<u32>(a.get_u64("k", 8));
  const std::size_t n = cfg.tile() << k;
  core::AttackOptions opts;
  opts.tile_shuffle_seed = a.get_u64("seed", 1);
  opts.small_e_strategy = parse_strategy(a.get("strategy", "front-to-back"));
  opts.attack_intra_block = a.flag("intra");
  opts.max_attacked_rounds =
      static_cast<std::size_t>(a.get_u64("rounds", static_cast<u64>(-1)));

  const auto input = core::worst_case_input(n, cfg, opts);
  std::cout << "generated " << n << " keys for " << cfg.to_string()
            << " (attacking "
            << std::min<std::size_t>(opts.max_attacked_rounds,
                                     core::attacked_round_count(n, cfg))
            << " of " << core::attacked_round_count(n, cfg)
            << " global rounds, predicted beta_2 = "
            << core::predicted_beta2(cfg.w, cfg.E) << ")\n";
  std::cout << "inversion fraction: "
            << workload::inversion_fraction(input) << "\n";

  const std::string out = a.get("out", "");
  if (!out.empty()) {
    workload::write_binary(out, input);
    std::cout << "wrote " << out << "\n";
    if (a.flag("csv")) {
      workload::write_csv(out + ".csv", input);
      std::cout << "wrote " << out << ".csv\n";
    }
  } else {
    std::cout << "first keys:";
    for (std::size_t i = 0; i < std::min<std::size_t>(16, n); ++i) {
      std::cout << ' ' << input[i];
    }
    std::cout << " ...\n(use --out file.wcmi to save)\n";
  }
  return 0;
}

int cmd_evaluate(const Args& a) {
  const u32 w = static_cast<u32>(a.get_u64("w", 32));
  const u32 e = static_cast<u32>(a.get_u64("E", 15));
  const auto side =
      a.get("side", "L") == "R" ? core::WarpSide::R : core::WarpSide::L;
  const auto strategy = parse_strategy(a.get("strategy", "front-to-back"));
  const auto wa = core::worst_case_warp(w, e, side, strategy);
  const u32 s = core::alignment_window_start(w, e, strategy);
  const auto eval = core::evaluate_warp(wa, s);
  std::cout << "w=" << w << " E=" << e << " side="
            << (side == core::WarpSide::L ? "L" : "R") << " strategy="
            << core::to_string(strategy) << "\n"
            << "aligned " << eval.aligned << " / " << w * e
            << " (closed form " << core::aligned_worst_case(w, e) << ")\n"
            << "serialization " << eval.totals.serialization << " cycles, "
            << eval.totals.replays << " replays, effective parallelism "
            << w << " -> " << core::effective_parallelism(w, e) << "\n";
  return 0;
}

int cmd_sort(const Args& a) {
  const auto cfg = config_from(a);
  const auto dev = device_from(a);
  const u32 k = static_cast<u32>(a.get_u64("k", 6));
  const std::size_t n = cfg.tile() << k;
  const auto lib = a.get("library", "thrust") == "mgpu"
                       ? sort::MergeSortLibrary::mgpu
                       : sort::MergeSortLibrary::thrust;

  workload::InputKind kind = workload::InputKind::worst_case;
  const std::string kind_name = a.get("input", "worst-case");
  for (const auto candidate :
       {workload::InputKind::random, workload::InputKind::sorted,
        workload::InputKind::reversed, workload::InputKind::nearly_sorted,
        workload::InputKind::worst_case}) {
    if (kind_name == workload::to_string(candidate)) {
      kind = candidate;
    }
  }

  const auto input = workload::make_input(kind, n, cfg, a.get_u64("seed", 1));
  const std::string algo = a.get("algorithm", "pairwise");
  sort::SortReport report;
  if (algo == "multiway") {
    report = sort::multiway_merge_sort(input, cfg, dev,
                                       static_cast<u32>(a.get_u64("ways", 4)));
  } else if (algo == "bitonic") {
    sort::SortConfig bcfg = cfg;
    bcfg.E = 2;
    std::size_t n2 = 1;
    while (n2 * 2 <= n) {
      n2 *= 2;
    }
    report = sort::bitonic_sort(
        std::vector<dmm::word>(input.begin(),
                               input.begin() +
                                   static_cast<std::ptrdiff_t>(n2)),
        bcfg, dev);
  } else if (algo == "radix") {
    report = sort::radix_sort(input, cfg, dev,
                              static_cast<u32>(a.get_u64("digit-bits", 4)));
  } else {
    report = sort::pairwise_merge_sort(input, cfg, dev, lib);
  }
  if (a.flag("json")) {
    analysis::write_report_json(std::cout, report);
    std::cout << "\n";
    return 0;
  }
  std::cout << report.summary() << "\n";
  for (const auto& r : report.rounds) {
    std::cout << "  " << r.name << ": " << r.modeled_seconds * 1e3
              << " ms, beta2 " << gpusim::beta2(r.kernel) << "\n";
  }
  return 0;
}

int cmd_visualize(const Args& a) {
  const u32 w = static_cast<u32>(a.get_u64("w", 16));
  const u32 e = static_cast<u32>(a.get_u64("E", 7));
  const auto strategy = parse_strategy(a.get("strategy", "front-to-back"));
  const auto wa = core::worst_case_warp(w, e, core::WarpSide::L, strategy);
  std::cout << core::render_warp(wa);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: wcmgen {generate|evaluate|sort|visualize} "
                 "[--flags]\n(see the file header for the full synopsis)\n";
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv, 2);
  try {
    if (cmd == "generate") {
      return cmd_generate(args);
    }
    if (cmd == "evaluate") {
      return cmd_evaluate(args);
    }
    if (cmd == "sort") {
      return cmd_sort(args);
    }
    if (cmd == "visualize") {
      return cmd_visualize(args);
    }
    std::cerr << "unknown subcommand '" << cmd << "'\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
