// wcmgen — command-line front end for the library: generate, inspect, and
// measure adversarial inputs without writing any C++.
//
//   wcmgen generate  --E 15 --b 512 [--k 8] [--seed S] [--strategy name]
//                    [--intra] [--rounds m] [--out file.wcmi] [--csv]
//   wcmgen evaluate  --E 15 [--w 32] [--side L|R] [--strategy name]
//   wcmgen sort      --E 15 --b 512 [--k 6] [--input kind] [--device name]
//                    [--library thrust|mgpu] [--padding p] [--layout kind]
//                    [--seed S] [--json] [--trace-out file.wcmt]
//                    [--algorithm pairwise|multiway|bitonic|radix|shearsort]
//   wcmgen inspect   --in file.wcmi
//   wcmgen analyze   --in file.wcmt [--json] [--pad p] [--layout kind]
//                    [--no-cross-check]
//   wcmgen prove     [--engine name|all] [--w n] [--b n] [--pad p]
//                    [--layout kind] [--E-min n] [--E-max n] [--any-E]
//                    [--ways k] [--digit-bits n] [--json]
//                    [--certify [--bs n,n,...] [--pads n,n,...]]
//   wcmgen verify    [--engine name|all] [--ws n,n,...] [--b n] [--pad p]
//                    [--layout kind] [--E-min n] [--E-max n] [--odd-E]
//                    [--ways k] [--digit-bits n] [--no-differential]
//                    [--json]
//   wcmgen visualize --E 7 [--w 16] [--strategy name]
//   wcmgen campaign  spec.json [--threads n] [--no-cache] [--cache file]
//                    [--out file.json] [--trace-dir dir] [--quiet]
//                    [--journal file.wcmj] [--resume] [--retries n]
//                    [--fail-fast]
//   wcmgen profile   [--telemetry trace.json] [--metrics metrics.json]
//                    (<any subcommand + its flags> |
//                     --engine name --adversarial small-E|large-E [--k n])
//   wcmgen serve     [--socket path|@name] [--data-dir dir] [--threads n]
//                    [--queue-max n] [--batch-max n] [--max-connections n]
//                    [--quiet]        (the wcmd daemon, docs/SERVE.md)
//   wcmgen version   print the release version, the git describe the
//                    binary was built from, and the cache salt (also
//                    --version / -V)
//
// Every subcommand prints to stdout; `generate --out` additionally writes
// the WCMI binary (plus .csv with --csv).
//
// Exit codes (documented in docs/API.md):
//   0 success
//   1 findings reported (analyze, prove, and verify subcommands only)
//   2 usage error (unknown subcommand/flag, unparseable or unknown value)
//   3 bad input file (missing, truncated, corrupt WCMI/WCMT)
//   4 invalid configuration (E/b/w constraint violated)
//   5 internal error (simulator invariant break or any other exception)
//   6 degraded campaign (cells quarantined; aggregate still written)
//   7 interrupted campaign (SIGINT/SIGTERM drain; resume with --resume)
//
// `serve` exits 0 after a clean drain (every request answered) and 5 when
// the drain invariant is violated; socket errors map to 3 as usual.

#include <charconv>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analysis/json_export.hpp"
#include "analyze/lint.hpp"
#include "analyze/passes/verify.hpp"
#include "analyze/symbolic/certify.hpp"
#include "analyze/symbolic/prove.hpp"
#include "gpusim/layout.hpp"
#include "gpusim/trace.hpp"
#include "analysis/series.hpp"
#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "runtime/cache.hpp"
#include "runtime/campaign.hpp"
#include "runtime/scheduler.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "telemetry/eventlog.hpp"
#include "util/json.hpp"
#include "util/version.hpp"
#include "sort/bitonic.hpp"
#include "util/failpoint.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"
#include "sort/multiway.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/radix.hpp"
#include "sort/shearsort.hpp"
#include "util/error.hpp"
#include "workload/inputs.hpp"
#include "workload/inversions.hpp"
#include "workload/io.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcmgen — worst-case input engineering for GPU pairwise merge sort

usage: wcmgen <subcommand> [--flags]

subcommands:
  generate   build a worst-case permutation
             --E n --b n [--w n] [--padding n] [--k n] [--seed n]
             [--strategy front-to-back|back-to-front|outside-in]
             [--intra] [--rounds n] [--out file.wcmi] [--csv]
  evaluate   score one worst-case warp against the closed forms
             --E n [--w n] [--side L|R] [--strategy name]
  sort       run a simulated sort and report conflicts/time
             --E n --b n [--w n] [--padding n] [--k n] [--seed n]
             [--layout linear|xor|rotation]
             [--input random|sorted|reversed|nearly-sorted|worst-case]
             [--device m4000|2080ti] [--library thrust|mgpu]
             [--algorithm pairwise|multiway|bitonic|radix|shearsort]
             [--ways n] [--digit-bits n] [--json]
             [--trace-out file.wcmt]
  inspect    validate and summarize a WCMI file
             --in file.wcmi
  analyze    lint a recorded shared-memory trace (races, bounds, strides;
             see docs/LINT.md) -- also available as the wcm-lint binary
             --in file.wcmt [--json] [--pad n]
             [--layout linear|xor|rotation] [--no-cross-check]
  prove      derive symbolic bank-conflict bounds for the sort engines,
             valid for every E in the declared range, without executing
             any trace; cross-checks Theorems 3 and 9 (docs/LINT.md).
             --certify upgrades the bounds to a machine-checkable
             certificate over a (b, pad) grid: every statement proved
             conflict-free, or a DMM-replay-confirmed counterexample
             [--engine blocksort|block-merge|pairwise|multiway|bitonic|
              radix|scan|shearsort|all] [--w n] [--b n] [--pad n]
             [--layout linear|xor|rotation] [--E-min n] [--E-max n]
             [--any-E] [--ways k] [--digit-bits n] [--json]
             [--certify] [--bs n,n,...] [--pads n,n,...]
  verify     statically verify the engines' access-pattern declarations
             across warp widths: barrier uniformity, def-use (no
             uninitialized or out-of-bounds shared-memory access) for
             every E in range, parametric-w conflict bounds, the
             non-coprime gcd(w,E) breakdown sweep of Theorems 3/9, and a
             static-vs-dynamic differential gate (docs/LINT.md); the
             report is digest-sealed like prove --certify
             [--engine name|all] [--ws n,n,...] [--b n] [--pad n]
             [--layout linear|xor|rotation] [--E-min n] [--E-max n]
             [--odd-E] [--ways k] [--digit-bits n] [--no-differential]
             [--json]
  visualize  render one worst-case warp assignment
             --E n [--w n] [--strategy name]
  campaign   expand a JSON grid spec into cells and run them on the
             parallel runtime with result caching, a crash-safe journal,
             retry/quarantine fault tolerance, and graceful SIGINT/SIGTERM
             drain (docs/RUNTIME.md)
             spec.json [--threads n] [--no-cache] [--cache file.wcmc]
             [--out file.json] [--trace-dir dir] [--quiet]
             [--journal file.wcmj] [--resume] [--retries n] [--fail-fast]
  profile    run any invocation under telemetry: span tracing to a
             Chrome/Perfetto trace plus a metrics summary table
             (docs/TELEMETRY.md); exit code is the wrapped command's
             profile [--telemetry trace.json] [--metrics metrics.json]
               <subcommand + its flags>            wrap an invocation, or
               --engine pairwise|multiway|bitonic|radix|shearsort
               --adversarial small-E|large-E [--k n] [--seed n]
               [--device name] [--json]            canned adversarial sort
  serve      run the wcmd daemon in-process: accept line-delimited JSON
             requests over a Unix-domain socket with request coalescing,
             batched scheduling, and a multi-tenant response cache
             (docs/SERVE.md); SIGINT/SIGTERM drain gracefully
             [--socket path|@name] [--data-dir dir] [--threads n]
             [--queue-max n] [--batch-max n] [--max-connections n]
             [--quiet]
  metrics    fetch a running daemon's metrics over its socket and print
             them (docs/TELEMETRY.md "Exposition formats"); --format
             prometheus emits Prometheus text exposition 0.0.4
             [--socket path|@name] [--format json|text|prometheus]
             [--timeout-ms n]
  version    print the release version, the git describe this binary was
             built from, and the response-cache salt (also --version / -V)
  help       print this message (also --help / -h)

exit codes: 0 ok, 1 findings (analyze/prove/verify), 2 usage, 3 bad input
            file,
            4 bad configuration, 5 internal error (or a violated serve
            drain invariant), 6 degraded campaign (quarantined cells),
            7 interrupted campaign (resumable)
)";

/// Strict full-string parse of an unsigned decimal; rejects empty values,
/// signs, trailing garbage ("15x"), and values above `max`.
u64 parse_u64_value(const std::string& flag, const std::string& text,
                    u64 max = std::numeric_limits<u64>::max()) {
  if (text.empty()) {
    throw parse_error("flag " + flag + " requires a numeric value");
  }
  u64 value = 0;
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (err != std::errc() || ptr != text.data() + text.size()) {
    throw parse_error("invalid value '" + text + "' for " + flag +
                      " (expected an unsigned integer)");
  }
  if (value > max) {
    throw parse_error("value " + text + " for " + flag +
                      " is out of range (max " + std::to_string(max) + ")");
  }
  return value;
}

/// Comma-separated list of unsigned decimals ("0,1,4"); every element is
/// parsed with the same strictness as a scalar flag value.
std::vector<u32> parse_u32_list(const std::string& flag,
                                const std::string& text) {
  std::vector<u32> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    values.push_back(static_cast<u32>(
        parse_u64_value(flag, text.substr(start, end - start),
                        std::numeric_limits<std::uint32_t>::max())));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return values;
}

std::string join_choices(const std::vector<std::string>& choices) {
  std::string out;
  for (const auto& c : choices) {
    if (!out.empty()) {
      out += ", ";
    }
    out += c;
  }
  return out;
}

struct Args {
  std::map<std::string, std::string> named;

  bool flag(const std::string& name) const {
    return named.count("--" + name) > 0;
  }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback : it->second;
  }
  u64 get_u64(const std::string& name, u64 fallback,
              u64 max = std::numeric_limits<u64>::max()) const {
    const auto it = named.find("--" + name);
    return it == named.end() ? fallback
                             : parse_u64_value("--" + name, it->second, max);
  }
  u32 get_u32(const std::string& name, u32 fallback) const {
    return static_cast<u32>(get_u64(
        name, fallback, std::numeric_limits<std::uint32_t>::max()));
  }

  /// Reject flags outside `allowed` (naming the subcommand and the valid
  /// set) so a typo never silently falls back to a default.
  void require_known(const std::string& cmd,
                     const std::vector<std::string>& allowed) const {
    for (const auto& [key, value] : named) {
      bool ok = key == "--help";
      for (const auto& a : allowed) {
        ok = ok || key == "--" + a;
      }
      if (!ok) {
        std::vector<std::string> pretty;
        pretty.reserve(allowed.size());
        for (const auto& a : allowed) {
          pretty.push_back("--" + a);
        }
        throw parse_error("unknown flag '" + key + "' for subcommand '" +
                          cmd + "' (valid: " + join_choices(pretty) + ")");
      }
    }
  }
};

Args parse(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw parse_error("unexpected argument '" + key +
                        "' (flags start with --)");
    }
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.named[key] = argv[++i];
    } else {
      args.named[key] = "";
    }
  }
  return args;
}

/// Strict choice parse: value must match one of `choices` exactly.
template <typename T>
T parse_choice(const std::string& flag, const std::string& value,
               const std::vector<std::pair<std::string, T>>& choices) {
  std::vector<std::string> names;
  names.reserve(choices.size());
  for (const auto& [name, v] : choices) {
    if (value == name) {
      return v;
    }
    names.push_back(name);
  }
  throw parse_error("unknown value '" + value + "' for " + flag +
                    " (valid: " + join_choices(names) + ")");
}

core::AlignmentStrategy parse_strategy(const std::string& s) {
  return parse_choice<core::AlignmentStrategy>(
      "--strategy", s,
      {{"front-to-back", core::AlignmentStrategy::front_to_back},
       {"back-to-front", core::AlignmentStrategy::back_to_front},
       {"outside-in", core::AlignmentStrategy::outside_in}});
}

sort::SortConfig config_from(const Args& a) {
  sort::SortConfig cfg;
  cfg.E = a.get_u32("E", 15);
  cfg.b = a.get_u32("b", 512);
  cfg.w = a.get_u32("w", 32);
  cfg.padding = a.get_u32("padding", 0);
  cfg.layout = gpusim::parse_layout_kind(a.get("layout", "linear"));
  cfg.validate();
  return cfg;
}

gpusim::Device device_from(const Args& a) {
  return parse_choice<gpusim::Device>(
      "--device", a.get("device", "m4000"),
      {{"m4000", gpusim::quadro_m4000()},
       {"quadro", gpusim::quadro_m4000()},
       {"2080ti", gpusim::rtx_2080ti()},
       {"rtx2080ti", gpusim::rtx_2080ti()}});
}

int cmd_generate(const Args& a) {
  a.require_known("generate", {"E", "b", "w", "padding", "k", "seed",
                               "strategy", "intra", "rounds", "out", "csv"});
  const auto cfg = config_from(a);
  const u32 k = static_cast<u32>(a.get_u64("k", 8, 40));  // n = bE * 2^k
  const std::size_t n = cfg.tile() << k;
  core::AttackOptions opts;
  opts.tile_shuffle_seed = a.get_u64("seed", 1);
  opts.small_e_strategy = parse_strategy(a.get("strategy", "front-to-back"));
  opts.attack_intra_block = a.flag("intra");
  opts.max_attacked_rounds =
      static_cast<std::size_t>(a.get_u64("rounds", static_cast<u64>(-1)));

  const auto input = core::worst_case_input(n, cfg, opts);
  std::cout << "generated " << n << " keys for " << cfg.to_string()
            << " (attacking "
            << std::min<std::size_t>(opts.max_attacked_rounds,
                                     core::attacked_round_count(n, cfg))
            << " of " << core::attacked_round_count(n, cfg)
            << " global rounds, predicted beta_2 = "
            << core::predicted_beta2(cfg.w, cfg.E) << ")\n";
  std::cout << "inversion fraction: "
            << workload::inversion_fraction(input) << "\n";

  const std::string out = a.get("out", "");
  if (!out.empty()) {
    workload::write_binary(out, input);
    std::cout << "wrote " << out << "\n";
    if (a.flag("csv")) {
      workload::write_csv(out + ".csv", input);
      std::cout << "wrote " << out << ".csv\n";
    }
  } else {
    std::cout << "first keys:";
    for (std::size_t i = 0; i < std::min<std::size_t>(16, n); ++i) {
      std::cout << ' ' << input[i];
    }
    std::cout << " ...\n(use --out file.wcmi to save)\n";
  }
  return 0;
}

int cmd_evaluate(const Args& a) {
  a.require_known("evaluate", {"E", "w", "side", "strategy"});
  const u32 w = a.get_u32("w", 32);
  const u32 e = a.get_u32("E", 15);
  const auto side = parse_choice<core::WarpSide>(
      "--side", a.get("side", "L"),
      {{"L", core::WarpSide::L}, {"R", core::WarpSide::R}});
  const auto strategy = parse_strategy(a.get("strategy", "front-to-back"));
  const auto wa = core::worst_case_warp(w, e, side, strategy);
  const u32 s = core::alignment_window_start(w, e, strategy);
  const auto eval = core::evaluate_warp(wa, s);
  std::cout << "w=" << w << " E=" << e << " side="
            << (side == core::WarpSide::L ? "L" : "R") << " strategy="
            << core::to_string(strategy) << "\n"
            << "aligned " << eval.aligned << " / " << w * e
            << " (closed form " << core::aligned_worst_case(w, e) << ")\n"
            << "serialization " << eval.totals.serialization << " cycles, "
            << eval.totals.replays << " replays, effective parallelism "
            << w << " -> " << core::effective_parallelism(w, e) << "\n";
  return 0;
}

int cmd_sort(const Args& a) {
  a.require_known("sort", {"E", "b", "w", "padding", "layout", "k", "seed",
                           "input", "device", "library", "algorithm", "ways",
                           "digit-bits", "json", "trace-out"});
  auto cfg = config_from(a);
  const std::string trace_out = a.get("trace-out", "");
  gpusim::TraceRecorder recorder;
  if (!trace_out.empty()) {
    cfg.trace_sink = &recorder;
  }
  const auto dev = device_from(a);
  const u32 k = static_cast<u32>(a.get_u64("k", 6, 40));  // n = bE * 2^k
  const std::size_t n = cfg.tile() << k;
  const auto lib = parse_choice<sort::MergeSortLibrary>(
      "--library", a.get("library", "thrust"),
      {{"thrust", sort::MergeSortLibrary::thrust},
       {"mgpu", sort::MergeSortLibrary::mgpu}});

  const auto kind = parse_choice<workload::InputKind>(
      "--input", a.get("input", "worst-case"),
      {{"random", workload::InputKind::random},
       {"sorted", workload::InputKind::sorted},
       {"reversed", workload::InputKind::reversed},
       {"nearly-sorted", workload::InputKind::nearly_sorted},
       {"worst-case", workload::InputKind::worst_case}});

  const auto input = workload::make_input(kind, n, cfg, a.get_u64("seed", 1));
  const std::string algo = a.get("algorithm", "pairwise");
  sort::SortReport report;
  if (algo == "multiway") {
    report = sort::multiway_merge_sort(input, cfg, dev, a.get_u32("ways", 4));
  } else if (algo == "bitonic") {
    sort::SortConfig bcfg = cfg;
    bcfg.E = 2;
    std::size_t n2 = 1;
    while (n2 * 2 <= n) {
      n2 *= 2;
    }
    report = sort::bitonic_sort(
        std::vector<dmm::word>(input.begin(),
                               input.begin() +
                                   static_cast<std::ptrdiff_t>(n2)),
        bcfg, dev);
  } else if (algo == "radix") {
    report = sort::radix_sort(input, cfg, dev, a.get_u32("digit-bits", 4));
  } else if (algo == "shearsort") {
    report = sort::shearsort(input, cfg, dev);
  } else if (algo == "pairwise") {
    report = sort::pairwise_merge_sort(input, cfg, dev, lib);
  } else {
    throw parse_error("unknown value '" + algo +
                      "' for --algorithm (valid: pairwise, multiway, "
                      "bitonic, radix, shearsort)");
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    if (!os) {
      throw io_error("cannot open trace output file", trace_out);
    }
    gpusim::write_trace(os, recorder.trace());
    std::cerr << "wrote " << recorder.trace().steps.size()
              << " trace steps to " << trace_out << "\n";
  }
  if (a.flag("json")) {
    analysis::write_report_json(std::cout, report);
    std::cout << "\n";
    return 0;
  }
  std::cout << report.summary() << "\n";
  for (const auto& r : report.rounds) {
    std::cout << "  " << r.name << ": " << r.modeled_seconds * 1e3
              << " ms, beta2 " << gpusim::beta2(r.kernel) << "\n";
  }
  return 0;
}

int cmd_inspect(const Args& a) {
  a.require_known("inspect", {"in"});
  const std::string in = a.get("in", "");
  if (in.empty()) {
    throw parse_error("inspect requires --in file.wcmi");
  }
  const auto keys = workload::read_binary(in);
  std::cout << in << ": " << keys.size() << " keys\n";
  if (!keys.empty()) {
    std::cout << "inversion fraction: "
              << workload::inversion_fraction(keys) << "\n"
              << "permutation of 0..n-1: "
              << (workload::is_permutation_of_iota(keys) ? "yes" : "no")
              << "\n";
    std::cout << "first keys:";
    for (std::size_t i = 0; i < std::min<std::size_t>(16, keys.size()); ++i) {
      std::cout << ' ' << keys[i];
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_analyze(const Args& a) {
  a.require_known("analyze", {"in", "json", "pad", "layout",
                              "no-cross-check"});
  const std::string in = a.get("in", "");
  if (in.empty()) {
    throw parse_error("analyze requires --in file.wcmt");
  }
  analyze::LintOptions opts;
  opts.json = a.flag("json");
  opts.analysis.pad = a.get_u32("pad", 0);
  opts.analysis.layout = gpusim::parse_layout_kind(a.get("layout", "linear"));
  opts.analysis.cross_check = !a.flag("no-cross-check");
  return analyze::run_lint({in}, opts, std::cout, std::cerr);
}

/// The symbolic shape flag set shared by the `prove` branches and
/// `verify`: one parse, one set of defaults, so the subcommands cannot
/// drift apart on flag semantics.
struct SymbolicShapeFlags {
  u32 w = 32;
  u32 b = 64;
  u32 pad = 0;
  gpusim::LayoutKind layout = gpusim::LayoutKind::linear;
  u32 e_min = 3;
  u32 e_max = 0;
  u32 ways = 4;
  u32 digit_bits = 4;
  bool any_e = false;
  bool json = false;
};

SymbolicShapeFlags symbolic_shape_flags(const Args& a, u32 e_min_default,
                                        u32 e_max_default) {
  SymbolicShapeFlags f;
  f.w = a.get_u32("w", 32);
  f.b = a.get_u32("b", 64);
  f.pad = a.get_u32("pad", 0);
  f.layout = gpusim::parse_layout_kind(a.get("layout", "linear"));
  f.e_min = a.get_u32("E-min", e_min_default);
  f.e_max = a.get_u32("E-max", e_max_default);
  f.ways = a.get_u32("ways", 4);
  f.digit_bits = a.get_u32("digit-bits", 4);
  f.any_e = a.flag("any-E");
  f.json = a.flag("json");
  return f;
}

std::vector<std::string> engine_list(const Args& a) {
  const std::string engine = a.get("engine", "all");
  return engine == "all" ? analyze::symbolic::all_engines()
                         : std::vector<std::string>{engine};
}

int cmd_prove(const Args& a) {
  a.require_known("prove", {"engine", "w", "b", "pad", "layout", "E-min",
                            "E-max", "any-E", "ways", "digit-bits", "json",
                            "certify", "bs", "pads"});
  const SymbolicShapeFlags shape = symbolic_shape_flags(a, 3, 0);
  if (a.flag("certify")) {
    // Certification mode: universally quantified conflict-freedom over a
    // (b, pad) grid, or a replay-confirmed counterexample (docs/THEORY.md).
    analyze::symbolic::CertifyOptions copts;
    copts.w = shape.w;
    copts.bs = parse_u32_list("--bs", a.get("bs", a.get("b", "64")));
    copts.pads = parse_u32_list("--pads", a.get("pads", a.get("pad", "0")));
    copts.layout = shape.layout;
    copts.e_min = shape.e_min;
    copts.e_max = shape.e_max;
    copts.ways = shape.ways;
    copts.digit_bits = shape.digit_bits;
    copts.any_e = shape.any_e;
    copts.json = shape.json;
    const std::vector<std::string> engines = engine_list(a);
    bool all_certified = true;
    for (const auto& name : engines) {
      const auto cert = analyze::symbolic::certify_engine(name, copts);
      if (copts.json) {
        // One JSON document per engine, one per line (NDJSON for "all").
        analyze::symbolic::render_json(std::cout, cert);
      } else {
        analyze::symbolic::render_text(std::cout, cert);
      }
      all_certified = all_certified && cert.certified;
    }
    return all_certified ? 0 : 1;
  }
  if (a.flag("bs") || a.flag("pads")) {
    throw parse_error("--bs/--pads are grid axes of certification mode "
                      "(add --certify, or use scalar --b/--pad)");
  }
  analyze::symbolic::ProveOptions opts;
  opts.w = shape.w;
  opts.b = shape.b;
  opts.pad = shape.pad;
  opts.layout = shape.layout;
  opts.e_min = shape.e_min;
  opts.e_max = shape.e_max;
  opts.ways = shape.ways;
  opts.digit_bits = shape.digit_bits;
  opts.any_e = shape.any_e;
  opts.json = shape.json;
  const auto report = analyze::symbolic::prove(engine_list(a), opts);
  if (opts.json) {
    analyze::symbolic::render_json(std::cout, report);
  } else {
    analyze::symbolic::render_text(std::cout, report);
  }
  return report.findings.empty() ? 0 : 1;
}

int cmd_verify(const Args& a) {
  a.require_known("verify", {"engine", "ws", "b", "pad", "layout", "E-min",
                             "E-max", "odd-E", "ways", "digit-bits", "json",
                             "no-differential"});
  analyze::passes::VerifyOptions opts;
  // E defaults deliberately exceed the conflict prover's E < w domain:
  // the def-use and barrier passes are universal over the whole range,
  // the conflict-bound pass clamps itself to the model's regime.
  const SymbolicShapeFlags shape = symbolic_shape_flags(a, 1, 256);
  opts.ws = parse_u32_list("--ws", a.get("ws", "2,4,8,16,32,64"));
  for (const u32 w : opts.ws) {
    if (w < 1) {
      throw parse_error("--ws values must be >= 1");
    }
  }
  opts.b = shape.b;
  opts.pad = shape.pad;
  opts.layout = shape.layout;
  opts.e_min = shape.e_min;
  opts.e_max = shape.e_max;
  opts.ways = shape.ways;
  opts.digit_bits = shape.digit_bits;
  // verify defaults to every E (the static claims are universal); --odd-E
  // restricts to the paper's odd-E congruence like prove's default.
  opts.any_e = !a.flag("odd-E");
  opts.differential = !a.flag("no-differential");
  opts.json = shape.json;
  if (opts.e_min < 1 || opts.e_min > opts.e_max) {
    throw parse_error("verify needs 1 <= --E-min <= --E-max");
  }
  const auto report = analyze::passes::run_verify(engine_list(a), opts);
  if (opts.json) {
    analyze::passes::render_json(std::cout, report);
  } else {
    analyze::passes::render_text(std::cout, report);
  }
  return report.proved && report.differential_ok ? 0 : 1;
}

/// Shared by the SIGINT/SIGTERM handlers and the campaign: cancel() is a
/// lock-free atomic store, so it is async-signal-safe.
runtime::CancelSource g_campaign_cancel;

extern "C" void wcmgen_on_signal(int /*signum*/) {
  g_campaign_cancel.cancel();
}

int cmd_campaign(const Args& a, const std::string& spec_path) {
  a.require_known("campaign", {"spec", "threads", "no-cache", "cache", "out",
                               "trace-dir", "quiet", "journal", "resume",
                               "retries", "fail-fast"});
  std::string path = spec_path.empty() ? a.get("spec", "") : spec_path;
  if (path.empty()) {
    throw parse_error(
        "campaign requires a spec file: wcmgen campaign spec.json");
  }
  const auto spec = runtime::load_campaign_spec(path);

  runtime::CampaignOptions opts;
  opts.threads = a.get_u32("threads", 0);
  opts.use_cache = !a.flag("no-cache");
  opts.cache_path = a.get("cache", "");
  opts.trace_dir = a.get("trace-dir", "");
  if (!a.flag("quiet")) {
    opts.progress = &std::cerr;
  }
  // Journal next to the spec by default (like the cache), overridable.
  opts.journal_path = a.get("journal", path + ".wcmj");
  opts.resume = a.flag("resume");
  opts.fail_fast = a.flag("fail-fast");
  // --retries n = n re-runs after the first failure.
  opts.retry.max_attempts =
      static_cast<u32>(a.get_u64("retries", 2, 100)) + 1;

  // Graceful drain: a signal stops admission; in-flight cells finish and
  // are journaled; the process exits 7 with a --resume-able journal.
  opts.cancel = &g_campaign_cancel;
  std::signal(SIGINT, wcmgen_on_signal);
  std::signal(SIGTERM, wcmgen_on_signal);
  const auto outcome = runtime::run_campaign(spec, opts);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  if (outcome.interrupted()) {
    std::cerr << "campaign " << spec.name << ": interrupted — "
              << outcome.cancelled
              << " cells pending; rerun with --resume to continue\n";
    return 7;
  }

  const std::string out = a.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    if (!os) {
      throw io_error("cannot open campaign output file", out);
    }
    os << outcome.json << "\n";
    if (!os) {
      throw io_error("campaign output write failed", out);
    }
  } else {
    std::cout << outcome.json << "\n";
  }
  // Fixed-format summary (campaign_ci greps these fields).
  std::cerr << "campaign " << spec.name << ": cells=" << outcome.cells
            << " computed=" << outcome.computed
            << " cached=" << outcome.cache_hits
            << " replayed=" << outcome.replayed
            << " quarantined=" << outcome.quarantined.size()
            << " threads=" << outcome.threads << " wall=" << outcome.wall_seconds
            << "s\n";
  for (const auto& q : outcome.quarantined) {
    std::cerr << "quarantined cell " << q.index << " (" << q.label
              << ") after " << q.attempts << " attempts: " << q.message
              << "\n";
  }
  return outcome.degraded() ? 6 : 0;
}

int cmd_serve(const Args& a) {
  a.require_known("serve", {"socket", "data-dir", "threads", "queue-max",
                            "batch-max", "max-connections", "quiet"});
  serve::ServerConfig cfg;
  cfg.socket = a.get("socket", cfg.socket);
  cfg.data_dir = a.get("data-dir", "");
  cfg.threads = a.get_u32("threads", 0);
  cfg.queue_max = a.get_u64("queue-max", cfg.queue_max, 1 << 20);
  cfg.batch_max = a.get_u64("batch-max", cfg.batch_max, 1 << 20);
  cfg.max_connections =
      a.get_u64("max-connections", cfg.max_connections, 1 << 20);
  if (cfg.queue_max == 0 || cfg.batch_max == 0 || cfg.max_connections == 0) {
    throw parse_error(
        "--queue-max, --batch-max, and --max-connections must be >= 1");
  }
  serve::Server server(cfg);
  return serve::run_server(server, a.flag("quiet"));
}

int cmd_metrics(const Args& a) {
  a.require_known("metrics", {"socket", "format", "timeout-ms"});
  const std::string socket = a.get("socket", "@wcmd");
  const std::string format = a.get("format", "json");
  if (format != "json" && format != "text" && format != "prometheus") {
    throw parse_error("invalid value '" + format +
                      "' for --format (valid: json, prometheus, text)");
  }
  const u64 timeout_ms = a.get_u64("timeout-ms", 2000, 600'000);
  serve::Client client = serve::connect_with_retry(socket, timeout_ms);
  json::Object params;
  params.emplace("format", json::Value(format));
  json::Object req;
  req.emplace("id", json::Value(std::string("metrics")));
  req.emplace("op", json::Value(std::string("metrics")));
  req.emplace("params", json::Value(std::move(params)));
  const std::string reply =
      client.roundtrip(json::to_text(json::Value(std::move(req))));
  const json::Value doc = json::parse(reply);
  const json::Object& fields = doc.as_object();
  const auto ok = fields.find("ok");
  if (ok == fields.end() || !ok->second.as_bool()) {
    throw io_error("daemon refused the metrics request", reply);
  }
  const json::Value& result = fields.at("result");
  if (format == "json") {
    std::cout << json::to_text(result) << "\n";
  } else {
    // The daemon wraps line-oriented expositions in a {"body","format"}
    // envelope; unwrap so stdout is the raw scrape document.
    std::cout << result.as_object().at("body").as_string();
  }
  return 0;
}

int cmd_version() {
  // version = the release; describe = the exact commit the binary came
  // from; salt = what partitions WCMC/WCMS cache files across builds (a
  // mismatched salt is why a daemon starts cold after an upgrade).
  std::cout << "wcmgen " << version_string() << " (" << build_describe()
            << ")\n"
            << "cache salt: 0x" << std::hex << runtime::code_version_salt()
            << std::dec << "\n";
  return 0;
}

int cmd_visualize(const Args& a) {
  a.require_known("visualize", {"E", "w", "strategy"});
  const u32 w = a.get_u32("w", 16);
  const u32 e = a.get_u32("E", 7);
  const auto strategy = parse_strategy(a.get("strategy", "front-to-back"));
  const auto wa = core::worst_case_warp(w, e, core::WarpSide::L, strategy);
  std::cout << core::render_warp(wa);
  return 0;
}

/// True iff `cmd` names a wrappable subcommand (everything but help and
/// profile itself).
bool is_subcommand(const std::string& cmd) {
  return cmd == "generate" || cmd == "evaluate" || cmd == "sort" ||
         cmd == "inspect" || cmd == "analyze" || cmd == "prove" ||
         cmd == "verify" || cmd == "visualize" || cmd == "campaign";
}

/// Route one subcommand invocation; `argv[1]` must be `cmd`.  Shared by
/// run() and the profile wrapper, so `wcmgen profile <anything>` executes
/// the exact same code path as the bare invocation.
int dispatch(const std::string& cmd, int argc, char** argv) {
  if (cmd == "campaign") {
    // The spec file is the one positional operand in the CLI; everything
    // else stays flag-style.
    int first = 2;
    std::string spec_path;
    if (argc > 2 && std::string(argv[2]).rfind("--", 0) != 0) {
      spec_path = argv[2];
      first = 3;
    }
    const Args cargs = parse(argc, argv, first);
    if (cargs.flag("help")) {
      std::cout << kUsage;
      return 0;
    }
    return cmd_campaign(cargs, spec_path);
  }
  const Args args = parse(argc, argv, 2);
  if (args.flag("help")) {
    std::cout << kUsage;
    return 0;
  }
  if (cmd == "generate") {
    return cmd_generate(args);
  }
  if (cmd == "evaluate") {
    return cmd_evaluate(args);
  }
  if (cmd == "sort") {
    return cmd_sort(args);
  }
  if (cmd == "inspect") {
    return cmd_inspect(args);
  }
  if (cmd == "analyze") {
    return cmd_analyze(args);
  }
  if (cmd == "prove") {
    return cmd_prove(args);
  }
  if (cmd == "verify") {
    return cmd_verify(args);
  }
  if (cmd == "visualize") {
    return cmd_visualize(args);
  }
  if (cmd == "serve") {
    return cmd_serve(args);
  }
  if (cmd == "metrics") {
    return cmd_metrics(args);
  }
  throw parse_error("unknown subcommand '" + cmd +
                    "' (valid: generate, evaluate, sort, inspect, analyze, "
                    "prove, verify, visualize, campaign, serve, metrics, "
                    "version, profile, help)");
}

int cmd_profile(int argc, char** argv) {
  // Peel off the profile-only flags; everything else is either a wrapped
  // subcommand invocation or the canned-adversarial flag set.
  std::string trace_out;
  std::string metrics_out;
  std::vector<std::string> rest;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--telemetry" || arg == "--metrics") {
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        throw parse_error("flag " + arg + " requires a file path");
      }
      (arg == "--telemetry" ? trace_out : metrics_out) = argv[++i];
    } else {
      rest.push_back(arg);
    }
  }

  telemetry::set_enabled(true);
  telemetry::set_tracing(true);
  if (!trace_out.empty()) {
    telemetry::set_trace_path(trace_out);
  }

  int code = 0;
  if (!rest.empty() && is_subcommand(rest[0])) {
    // Wrapped mode: re-dispatch the inner invocation untouched.
    std::vector<char*> inner;
    inner.push_back(argv[0]);
    for (const std::string& r : rest) {
      inner.push_back(const_cast<char*>(r.c_str()));
    }
    code = dispatch(rest[0], static_cast<int>(inner.size()), inner.data());
  } else {
    // Canned mode: a worst-case sort in the requested E regime.
    std::vector<char*> flat;
    flat.push_back(argv[0]);
    flat.push_back(const_cast<char*>("profile"));
    for (const std::string& r : rest) {
      flat.push_back(const_cast<char*>(r.c_str()));
    }
    const Args a = parse(static_cast<int>(flat.size()), flat.data(), 2);
    a.require_known("profile",
                    {"engine", "adversarial", "k", "seed", "device", "json"});
    const std::string engine = a.get("engine", "");
    if (engine.empty()) {
      throw parse_error(
          "profile needs a subcommand to wrap, or --engine with "
          "--adversarial small-E|large-E (see wcmgen --help)");
    }
    parse_choice<int>("--engine", engine,
                      {{"pairwise", 0}, {"multiway", 1}, {"bitonic", 2},
                       {"radix", 3}, {"shearsort", 4}});
    const bool small_e = parse_choice<bool>(
        "--adversarial", a.get("adversarial", "large-E"),
        {{"small-E", true}, {"large-E", false}});

    Args sorta;
    // small-E (E < w/2, Theorem 3) vs large-E (w/2 < E < w, Theorem 9 —
    // the regime the paper's headline slowdown comes from).
    sorta.named["--E"] = small_e ? "5" : "31";
    sorta.named["--b"] = "64";
    sorta.named["--w"] = "32";
    sorta.named["--k"] = std::to_string(a.get_u64("k", 4, 40));
    sorta.named["--seed"] = std::to_string(a.get_u64("seed", 1));
    sorta.named["--input"] = "worst-case";
    sorta.named["--algorithm"] = engine;
    sorta.named["--device"] = a.get("device", "m4000");
    if (a.flag("json")) {
      sorta.named["--json"] = "";
    }
    code = cmd_sort(sorta);
  }

  // Observability must never change the observed run's outcome: metric
  // and trace export failures warn and leave `code` alone.
  try {
    const telemetry::Snapshot snap = telemetry::registry().snapshot();
    std::cout << "--- telemetry metrics ---\n";
    snap.write_text(std::cout);
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (!os) {
        throw io_error("cannot open metrics output file", metrics_out);
      }
      snap.write_json(os);
      if (!os) {
        throw io_error("metrics write failed", metrics_out);
      }
      std::cerr << "wrote metrics to " << metrics_out << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "warning: telemetry: metrics export failed: " << e.what()
              << " (run continues)\n";
  }
  telemetry::flush_trace(&std::cerr);
  return code;
}

int run(int argc, char** argv) {
  // Surface a malformed WCM_FAILPOINTS value up front as a usage error
  // (exit 2) rather than letting the lazy parse throw mid-run inside a
  // worker (which would report exit 5).
  failpoint::configure_from_env();
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    std::cout << kUsage;
    return 0;
  }
  if (cmd == "version" || cmd == "--version" || cmd == "-V") {
    return cmd_version();
  }
  if (cmd == "profile") {
    return cmd_profile(argc, argv);
  }
  return dispatch(cmd, argc, argv);
}

}  // namespace

int main(int argc, char** argv) {
  // WCM_TRACE_OUT / WCM_TELEMETRY / WCM_EVENTLOG work for every
  // subcommand, not just profile (docs/TELEMETRY.md).
  telemetry::configure_from_env();
  telemetry::eventlog::configure_from_env();
  int code = 0;
  try {
    code = run(argc, argv);
  } catch (const parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n"
              << "(run 'wcmgen --help' for the full synopsis)\n";
    code = 2;
  } catch (const io_error& e) {
    std::cerr << "input error: " << e.what() << "\n";
    code = 3;
  } catch (const config_error& e) {
    std::cerr << "config error: " << e.what() << "\n";
    code = 4;
  } catch (const wcm::error& e) {
    std::cerr << "internal error [" << to_string(e.code())
              << "]: " << e.what() << "\n";
    code = 5;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    code = 5;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    code = 5;
  }
  // A failed trace export never changes the exit code (it only warns):
  // observability must not fail the run it observed.
  wcm::telemetry::flush_trace(&std::cerr);
  return code;
}
