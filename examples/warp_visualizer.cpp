// Warp visualizer: render the paper's Figure 1 / Figure 3 bank-matrix
// depictions as text.
//
//   ./warp_visualizer [w] [E]
//
// With no arguments, reproduces all three of the paper's depictions:
// Figure 1 (sorted order, w=16, E=12), Figure 3 left (w=16, E=7) and
// Figure 3 right (w=16, E=9).  With arguments, renders the worst-case
// construction for the given (w, E).

#include <cstdlib>
#include <iostream>

#include "core/numbers.hpp"
#include "core/warp_construction.hpp"

namespace {

using namespace wcm;

void show(u32 w, u32 E) {
  const auto regime = core::classify_e(w, E);
  if (regime == core::ERegime::small || regime == core::ERegime::large) {
    const auto wa = core::worst_case_warp(w, E);
    const u32 s = core::alignment_window_start(w, E);
    const auto eval = core::evaluate_warp(wa, s);
    std::cout << "Worst-case construction, w=" << w << ", E=" << E << " ("
              << (regime == core::ERegime::small ? "small" : "large")
              << " E, window starts at bank " << s << "):\n"
              << core::render_warp(wa) << "aligned " << eval.aligned
              << " of " << w * E << " elements; per-step serialization:";
    for (const auto d : eval.step_degree) {
      std::cout << ' ' << d;
    }
    std::cout << "\n\nconflict heatmap (threads per bank per iteration):\n"
              << core::render_conflict_heatmap(wa) << "\n";
  } else {
    // Sorted order (the Figure 1 situation): every d = gcd(w, E)-th chunk
    // aligns.
    const auto wa = core::sorted_order_warp(w, E);
    const auto eval = core::evaluate_warp(wa, 0);
    std::cout << "Sorted order, w=" << w << ", E=" << E
              << " (gcd = " << gcd(w, E) << "):\n"
              << core::render_warp(wa) << "aligned " << eval.aligned
              << " of " << w * E << " elements\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    show(static_cast<u32>(std::atoi(argv[1])),
         static_cast<u32>(std::atoi(argv[2])));
    return 0;
  }
  std::cout << "=== Figure 1: sorted input, w=16, E=12, gcd=4 ===\n\n";
  show(16, 12);
  std::cout << "=== Figure 3 (left): worst case, w=16, E=7 (small) ===\n\n";
  show(16, 7);
  std::cout << "=== Figure 3 (right): worst case, w=16, E=9 (large) ===\n\n";
  show(16, 9);
  return 0;
}
