// wcmd — the standalone adversarial-input daemon (docs/SERVE.md).
//
//   wcmd [--socket path|@name] [--data-dir dir] [--threads n]
//        [--queue-max n] [--batch-max n] [--max-connections n] [--quiet]
//
// Identical to `wcmgen serve`: accept line-delimited strict-JSON requests
// over a Unix-domain socket, coalesce identical in-flight requests,
// batch them into scheduler job graphs, and answer through the
// multi-tenant WCMS response cache.  SIGINT/SIGTERM drain gracefully:
// every request already read is answered before the process exits.
//
// Exit codes: 0 clean drain, 2 usage error, 3 socket/file error,
// 5 drain invariant violated (a read request was never answered).

#include <charconv>
#include <iostream>
#include <limits>
#include <string>

#include "serve/server.hpp"
#include "telemetry/eventlog.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcmd — long-running adversarial-input daemon (docs/SERVE.md)

usage: wcmd [--socket path|@name] [--data-dir dir] [--threads n]
            [--queue-max n] [--batch-max n] [--max-connections n]
            [--eventlog file.jsonl] [--quiet]

  --socket           Unix-domain socket to serve on; a leading '@' selects
                     the Linux abstract namespace (default @wcmd)
  --data-dir         durable state: WCMS response cache + campaign
                     journals (default: in-memory only)
  --threads          scheduler workers (default WCM_THREADS, else 1)
  --queue-max        admission queue bound before load-shedding (256)
  --batch-max        max requests per scheduler batch (16)
  --max-connections  concurrent client bound before load-shedding (64)
  --eventlog         append structured JSONL request events with
                     correlation ids (also WCM_EVENTLOG;
                     docs/TELEMETRY.md "Request tracing")
  --quiet            suppress startup/drain log lines

SIGINT/SIGTERM drain gracefully.  Exit codes: 0 clean drain, 2 usage,
3 socket error, 5 drain invariant violated.
)";

u64 flag_u64(const std::string& flag, const std::string& text, u64 max) {
  u64 value = 0;
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || err != std::errc() ||
      ptr != text.data() + text.size() || value > max) {
    throw parse_error("invalid value '" + text + "' for " + flag +
                      " (expected an unsigned integer <= " +
                      std::to_string(max) + ")");
  }
  return value;
}

int run(int argc, char** argv) {
  failpoint::configure_from_env();
  serve::ServerConfig cfg;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--version" || arg == "-V") {
      std::cout << "wcmd " << version_string() << " (" << build_describe()
                << ")\n";
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    const bool has_value = i + 1 < argc;
    if (!has_value) {
      throw parse_error("flag " + arg + " requires a value");
    }
    const std::string value = argv[++i];
    if (arg == "--socket") {
      cfg.socket = value;
    } else if (arg == "--eventlog") {
      telemetry::eventlog::set_path(value);
    } else if (arg == "--data-dir") {
      cfg.data_dir = value;
    } else if (arg == "--threads") {
      cfg.threads = static_cast<u32>(
          flag_u64(arg, value, std::numeric_limits<std::uint32_t>::max()));
    } else if (arg == "--queue-max") {
      cfg.queue_max = flag_u64(arg, value, 1 << 20);
    } else if (arg == "--batch-max") {
      cfg.batch_max = flag_u64(arg, value, 1 << 20);
    } else if (arg == "--max-connections") {
      cfg.max_connections = flag_u64(arg, value, 1 << 20);
    } else {
      throw parse_error("unknown flag '" + arg +
                        "' (run 'wcmd --help' for the synopsis)");
    }
  }
  if (cfg.queue_max == 0 || cfg.batch_max == 0 || cfg.max_connections == 0) {
    throw parse_error(
        "--queue-max, --batch-max, and --max-connections must be >= 1");
  }
  serve::Server server(cfg);
  return serve::run_server(server, quiet);
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::configure_from_env();
  telemetry::eventlog::configure_from_env();
  int code = 0;
  try {
    code = run(argc, argv);
  } catch (const parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    code = 2;
  } catch (const io_error& e) {
    std::cerr << "socket error: " << e.what() << "\n";
    code = 3;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    code = 5;
  }
  wcm::telemetry::flush_trace(&std::cerr);
  return code;
}
