// wcm-bench-defense — the price of immunity: defended vs undefended
// engines under random and Theorem 3/9 adversarial inputs.
//
//   wcm-bench-defense [--out BENCH_defense.json]
//
// Runs every (engine, layout, pad) defense variant over both input
// classes on the simulated device and records, per cell, the replay
// count (the conflict degree the DMM actually serialized), conflicts
// per element, beta_2 over the theorem-relevant merge reads, and the
// modeled time.  All metrics are simulated, so the output is
// deterministic and the committed BENCH_defense.json can be reproduced
// bit-for-bit.  The binary doubles as a gate: it exits non-zero when a
// certified-immune variant replays at all, or when a defense fails to
// beat the undefended engine on its own worst case.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/layout.hpp"
#include "sort/pairwise_sort.hpp"
#include "sort/shearsort.hpp"
#include "util/error.hpp"
#include "workload/inputs.hpp"

namespace {

using namespace wcm;

struct Variant {
  const char* engine;
  gpusim::LayoutKind layout;
  u32 pad;
  bool defended;
  bool immune;  ///< certified conflict-free: replays must be exactly zero
};

struct Cell {
  const Variant* variant = nullptr;
  const char* input = "";
  u64 replays = 0;
  double conflicts_per_element = 0.0;
  double beta2 = 0.0;
  /// beta_2 of the last merge round — the round the k = 3 construction
  /// attacks, and where the defense's effect is sharpest.
  double final_round_beta2 = 0.0;
  double seconds = 0.0;
};

constexpr Variant kVariants[] = {
    {"pairwise", gpusim::LayoutKind::linear, 0, false, false},
    {"pairwise", gpusim::LayoutKind::linear, 1, true, false},
    {"pairwise", gpusim::LayoutKind::xor_swizzle, 0, true, false},
    {"pairwise", gpusim::LayoutKind::rotation, 0, true, false},
    {"shearsort", gpusim::LayoutKind::linear, 0, false, false},
    {"shearsort", gpusim::LayoutKind::xor_swizzle, 0, true, true},
    {"shearsort", gpusim::LayoutKind::rotation, 0, true, true},
};

int run(int argc, char** argv) {
  std::string out_path = "BENCH_defense.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: wcm-bench-defense [--out BENCH_defense.json]\n";
      return 2;
    }
  }

  sort::SortConfig base{5, 64, 32};
  const std::size_t n = base.tile() * 8;
  const auto dev = gpusim::quadro_m4000();
  const auto random =
      workload::make_input(workload::InputKind::random, n, base, 3);
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, base, 3);

  std::vector<Cell> cells;
  for (const Variant& v : kVariants) {
    for (const auto& [name, input] :
         {std::pair{"random", &random}, std::pair{"worst-case", &worst}}) {
      sort::SortConfig cfg = base;
      cfg.padding = v.pad;
      cfg.layout = v.layout;
      const auto report =
          v.engine == std::string("pairwise")
              ? sort::pairwise_merge_sort(*input, cfg, dev)
              : sort::shearsort(*input, cfg, dev);
      Cell cell;
      cell.variant = &v;
      cell.input = name;
      cell.replays = report.totals.shared.replays;
      cell.conflicts_per_element = report.conflicts_per_element();
      cell.beta2 = report.beta2();
      cell.final_round_beta2 = gpusim::beta2(report.rounds.back().kernel);
      cell.seconds = report.seconds();
      std::cerr << v.engine << " layout=" << gpusim::to_string(v.layout)
                << " pad=" << v.pad << " " << name << ": replays "
                << cell.replays << ", final-round beta2 "
                << cell.final_round_beta2 << ", " << cell.seconds << " s\n";
      cells.push_back(cell);
    }
  }

  const auto find = [&](const char* engine, gpusim::LayoutKind layout,
                        u32 pad, const char* input) -> const Cell& {
    for (const Cell& c : cells) {
      if (c.variant->engine == std::string(engine) &&
          c.variant->layout == layout && c.variant->pad == pad &&
          c.input == std::string(input)) {
        return c;
      }
    }
    throw contract_error("benchmark cell missing");
  };

  bool ok = true;
  const Cell& exposed =
      find("pairwise", gpusim::LayoutKind::linear, 0, "worst-case");
  // The construction drives the attacked round's beta_2 to exactly E.
  if (exposed.final_round_beta2 < static_cast<double>(base.E)) {
    std::cerr << "FAILED: the adversarial input did not saturate the "
                 "undefended engine's attacked round\n";
    ok = false;
  }
  for (const Variant& v : kVariants) {
    const Cell& w = find(v.engine, v.layout, v.pad, "worst-case");
    if (v.immune && w.replays != 0) {
      std::cerr << "FAILED: " << v.engine << "/" << gpusim::to_string(v.layout)
                << " claims immunity but replayed " << w.replays << "\n";
      ok = false;
    }
    if (v.defended && v.engine == std::string("pairwise") &&
        w.final_round_beta2 >= exposed.final_round_beta2 / 1.5) {
      std::cerr << "FAILED: defense " << gpusim::to_string(v.layout)
                << " pad " << v.pad << " does not collapse the attacked "
                << "round's beta2\n";
      ok = false;
    }
  }

  std::ofstream os(out_path);
  if (!os) {
    throw io_error("cannot open benchmark output", out_path);
  }
  os << "{\"bench\":\"defense\",\"device\":\"" << dev.name
     << "\",\"E\":" << base.E << ",\"b\":" << base.b << ",\"w\":" << base.w
     << ",\"n\":" << n << ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const Variant& v = *c.variant;
    const Cell& rnd = find(v.engine, v.layout, v.pad, "random");
    if (i > 0) {
      os << ',';
    }
    os << "{\"engine\":\"" << v.engine << "\",\"layout\":\""
       << gpusim::to_string(v.layout) << "\",\"pad\":" << v.pad
       << ",\"defended\":" << (v.defended ? "true" : "false")
       << ",\"input\":\"" << c.input << "\",\"replays\":" << c.replays
       << ",\"conflicts_per_element\":" << c.conflicts_per_element
       << ",\"beta2\":" << c.beta2
       << ",\"final_round_beta2\":" << c.final_round_beta2
       << ",\"modeled_seconds\":" << c.seconds
       << ",\"slowdown_vs_random\":" << c.seconds / rnd.seconds << "}";
  }
  const Cell& padded =
      find("pairwise", gpusim::LayoutKind::linear, 1, "worst-case");
  os << "],\"attacked_round_beta2_undefended\":" << exposed.final_round_beta2
     << ",\"attacked_round_beta2_padded\":" << padded.final_round_beta2
     << ",\"ok\":" << (ok ? "true" : "false") << "}\n";
  if (!os.flush()) {
    throw io_error("benchmark output write failed", out_path);
  }
  std::cout << "wrote " << out_path << " (" << cells.size() << " cells)\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "wcm-bench-defense: " << e.what() << "\n";
    return 5;
  }
}
