// Parameter tuner: the engineering decision the paper's Sec. III-C
// discussion sets up — small E caps the worst case at w^2/4 total
// conflicts but costs more partitioning work; large E amortizes global
// work but risks ~w^2/2.  This example sweeps (E, b) on a device model and
// prints the random-input throughput, the worst-case throughput, and a
// robustness-weighted recommendation.
//
//   ./tuner [device] [k]     device in {m4000, 2080ti}, n = bE * 2^k

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/numbers.hpp"
#include "gpusim/occupancy.hpp"
#include "sort/pairwise_sort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

int main(int argc, char** argv) {
  using namespace wcm;

  const bool use_ti = argc > 1 && std::strcmp(argv[1], "2080ti") == 0;
  const auto dev = use_ti ? gpusim::rtx_2080ti() : gpusim::quadro_m4000();
  const u32 k = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 4;

  std::cout << "Tuning the pairwise merge sort for " << dev.name
            << " (n = bE * 2^" << k << ")\n\n";

  Table t({"E", "b", "occupancy", "rand_Me/s", "worst_Me/s", "slowdown",
           "worst_beta2"});
  double best_rand = 0.0, best_robust = 0.0;
  sort::SortConfig best_rand_cfg, best_robust_cfg;

  for (const u32 b : {128u, 256u, 512u}) {
    for (const u32 e : {9u, 11u, 13u, 15u, 17u, 19u, 21u, 23u}) {
      const auto regime = core::classify_e(32, e);
      if (regime != core::ERegime::small &&
          regime != core::ERegime::large) {
        continue;
      }
      const sort::SortConfig cfg{e, b, 32};
      const auto occ = gpusim::occupancy(dev, cfg.b, cfg.shared_bytes());
      if (occ.resident_blocks == 0) {
        continue;
      }
      const std::size_t n = cfg.tile() << k;
      const auto rand_in = workload::random_permutation(n, 7);
      const auto worst_in =
          workload::make_input(workload::InputKind::worst_case, n, cfg, 7);
      const auto rr = sort::pairwise_merge_sort(rand_in, cfg, dev);
      const auto rw = sort::pairwise_merge_sort(worst_in, cfg, dev);

      if (rr.throughput() > best_rand) {
        best_rand = rr.throughput();
        best_rand_cfg = cfg;
      }
      // Robust score: the throughput an adversary can force.
      if (rw.throughput() > best_robust) {
        best_robust = rw.throughput();
        best_robust_cfg = cfg;
      }
      t.new_row()
          .add(static_cast<std::size_t>(e))
          .add(static_cast<std::size_t>(b))
          .add(occ.fraction * 100.0, 0)
          .add(rr.throughput() / 1e6, 1)
          .add(rw.throughput() / 1e6, 1)
          .add(format_fixed((rw.seconds() - rr.seconds()) / rr.seconds() *
                                100.0,
                            1) +
               "%")
          .add(gpusim::beta2(rw.rounds.back().kernel), 2);
    }
  }
  t.print(std::cout);
  maybe_export_csv(t, "tuner");

  std::cout << "\nfastest on random inputs:     "
            << best_rand_cfg.to_string() << " (" << best_rand / 1e6
            << " Me/s)\n"
            << "best adversarial guarantee:   "
            << best_robust_cfg.to_string() << " (" << best_robust / 1e6
            << " Me/s forced minimum)\n"
            << "\nIf the two differ, the gap is the price of robustness the "
               "paper's construction exposes.\n";
  return 0;
}
