// wcm-benchdiff — noise-aware comparison of two BENCH_*.json reports,
// the repo's first perf-trajectory gate (docs/TELEMETRY.md).
//
//   wcm-benchdiff baseline.json candidate.json
//                 [--threshold-pct p] [--min-abs-ms m]
//                 [--keys dotted,names] [--report-only]
//
// Each compared key has a known good direction (latency down, qps up);
// a candidate value is a regression only when it moves in the bad
// direction by more than --threshold-pct percent AND — for
// millisecond-scale keys — by more than --min-abs-ms absolute (a 0.05 ms
// p50 doubling to 0.1 ms is scheduler noise, not a regression).  Keys
// present in only one report are skipped with a note, so reports can
// grow fields without breaking old baselines.
//
// Exit codes: 0 within thresholds, 1 regression detected, 2 usage error,
// 3 unreadable/unparseable report.  --report-only prints the comparison
// but always exits 0 (for seeding a baseline from a live run in CI).

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcm-benchdiff — noise-aware BENCH_*.json comparison (docs/TELEMETRY.md)

usage: wcm-benchdiff baseline.json candidate.json
                     [--threshold-pct p]  relative noise floor (default 25)
                     [--min-abs-ms m]     absolute floor for ms keys (0.05)
                     [--keys k1,k2,...]   dotted keys to compare (default:
                                          latency_ms.p50, latency_ms.p90,
                                          latency_ms.p99, qps, wall_seconds,
                                          cache.hit_rate)
                     [--report-only]      print the comparison, exit 0

exit codes: 0 within thresholds, 1 regression, 2 usage, 3 file error
)";

/// One compared metric: its dotted path into the report and which
/// direction is an improvement.
struct KeySpec {
  std::string path;
  bool lower_is_better = true;
  bool millisecond_scale = false;  ///< --min-abs-ms applies
};

KeySpec classify(const std::string& path) {
  KeySpec spec;
  spec.path = path;
  // Throughput-ish keys improve upward; everything else (latency, wall
  // time) improves downward.
  spec.lower_is_better =
      !(path == "qps" || path == "cache.hit_rate" || path == "ok");
  spec.millisecond_scale = path.find("_ms") != std::string::npos ||
                           path.find("latency_ms.") == 0;
  return spec;
}

std::vector<KeySpec> default_keys() {
  return {classify("latency_ms.p50"), classify("latency_ms.p90"),
          classify("latency_ms.p99"), classify("qps"),
          classify("wall_seconds"),   classify("cache.hit_rate")};
}

json::Value load_report(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw io_error("cannot open benchmark report", path);
  }
  std::ostringstream text;
  text << is.rdbuf();
  try {
    return json::parse(text.str());
  } catch (const std::exception& e) {
    throw io_error(std::string("unparseable benchmark report (") + e.what() +
                       ")",
                   path);
  }
}

/// Resolve a dotted path ("latency_ms.p99") to a number; false when any
/// segment is missing or the leaf is not a number.
bool lookup(const json::Value& doc, const std::string& path, double& out) {
  const json::Value* node = &doc;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string seg = path.substr(start, dot - start);
    if (!node->is_object()) {
      return false;
    }
    const json::Object& obj = node->as_object();
    const auto it = obj.find(seg);
    if (it == obj.end()) {
      return false;
    }
    node = &it->second;
    if (dot == std::string::npos) {
      break;
    }
    start = dot + 1;
  }
  if (!node->is_number()) {
    return false;
  }
  out = node->as_double();
  return true;
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || !(v >= 0.0)) {
      throw std::invalid_argument("range");
    }
    return v;
  } catch (const std::exception&) {
    throw parse_error("invalid value '" + text + "' for " + flag +
                      " (expected a non-negative number)");
  }
}

int run(int argc, char** argv) {
  std::vector<std::string> positional;
  std::vector<KeySpec> keys = default_keys();
  double threshold_pct = 25.0;
  double min_abs_ms = 0.05;
  bool report_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--report-only") {
      report_only = true;
      continue;
    }
    if (arg == "--threshold-pct" || arg == "--min-abs-ms" ||
        arg == "--keys") {
      if (i + 1 >= argc) {
        throw parse_error("flag " + arg + " requires a value");
      }
      const std::string value = argv[++i];
      if (arg == "--threshold-pct") {
        threshold_pct = parse_double_flag(arg, value);
      } else if (arg == "--min-abs-ms") {
        min_abs_ms = parse_double_flag(arg, value);
      } else {
        keys.clear();
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string key = value.substr(start, comma - start);
          if (key.empty()) {
            throw parse_error("--keys must be a comma-separated list of "
                              "non-empty dotted key names");
          }
          keys.push_back(classify(key));
          if (comma == std::string::npos) {
            break;
          }
          start = comma + 1;
        }
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      throw parse_error("unknown flag '" + arg +
                        "' (run 'wcm-benchdiff --help' for the synopsis)");
    }
    positional.push_back(arg);
  }
  if (positional.size() != 2) {
    throw parse_error(
        "expected exactly two positional operands: baseline.json "
        "candidate.json");
  }

  const json::Value baseline = load_report(positional[0]);
  const json::Value candidate = load_report(positional[1]);

  int regressions = 0;
  int compared = 0;
  for (const KeySpec& key : keys) {
    double base = 0.0;
    double cand = 0.0;
    const bool have_base = lookup(baseline, key.path, base);
    const bool have_cand = lookup(candidate, key.path, cand);
    if (!have_base || !have_cand) {
      std::cout << "skip   " << key.path << " (missing in "
                << (have_base ? "candidate" : "baseline") << ")\n";
      continue;
    }
    ++compared;
    const double delta = cand - base;
    const double bad_delta = key.lower_is_better ? delta : -delta;
    const double rel_pct =
        base != 0.0 ? 100.0 * bad_delta / std::fabs(base)
                    : (bad_delta > 0.0 ? 1e9 : 0.0);
    const bool over_relative = rel_pct > threshold_pct;
    const bool over_absolute =
        !key.millisecond_scale || std::fabs(delta) > min_abs_ms;
    const bool regressed = bad_delta > 0.0 && over_relative && over_absolute;
    regressions += regressed ? 1 : 0;
    std::cout << (regressed ? "REGRESS" : (bad_delta > 0.0 ? "noise " : "ok  "))
              << ' ' << key.path << " " << base << " -> " << cand << " ("
              << (rel_pct >= 0.0 ? "+" : "") << rel_pct << "% "
              << (key.lower_is_better ? "higher-is-worse" : "lower-is-worse")
              << ")\n";
  }
  if (compared == 0) {
    throw io_error("no comparable keys between the two reports",
                   positional[0] + " vs " + positional[1]);
  }
  if (regressions > 0) {
    std::cout << "benchdiff: " << regressions << " regression(s) over "
              << threshold_pct << "% (min-abs-ms=" << min_abs_ms << ")\n";
    return report_only ? 0 : 1;
  }
  std::cout << "benchdiff: " << compared << " key(s) within thresholds\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
