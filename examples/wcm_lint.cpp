// wcm-lint — the kernel sanitizer's standalone front end: statically check
// recorded shared-memory access traces (WCMT/WCMT2 streams, see
// gpusim/trace.hpp) for races, CREW violations, out-of-bounds and
// uninitialized accesses, and conflict-model divergence between the affine
// stride predictor and the DMM-measured step costs.
//
//   wcm-lint [--json] [--pad n] [--layout linear|xor|rotation]
//            [--no-cross-check] trace.wcmt [more...]
//
// Exit codes (documented in docs/LINT.md):
//   0 every trace parsed and is diagnostic-free
//   1 diagnostics were reported
//   2 usage error (unknown flag, no input files, bad numeric value)
//   3 a trace file was missing, unreadable, or corrupt
//   5 internal error

#include <charconv>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "gpusim/layout.hpp"
#include "util/error.hpp"

namespace {

using namespace wcm;

constexpr const char* kUsage =
    R"(wcm-lint — static race/bounds/stride analysis of shared-memory traces

usage: wcm-lint [--json] [--pad n] [--layout linear|xor|rotation]
                [--no-cross-check] trace.wcmt [more...]

flags:
  --json            one JSON array of per-trace reports instead of text
  --pad n           re-price the stride cross-check under a padded layout
                    (n words after every w logical words; default 0)
  --layout kind     re-price under a bank permutation: linear, xor, or
                    rotation (default linear; gpusim/layout.hpp)
  --no-cross-check  skip the predicted-vs-measured stride comparison
  --help            print this message

Record traces with `wcmgen sort --trace-out file.wcmt` or through
SortConfig::trace_sink; the rules and the trace grammar are documented in
docs/LINT.md.

exit codes: 0 clean, 1 diagnostics found, 2 usage, 3 bad trace file,
            5 internal error
)";

u32 parse_pad(const std::string& text) {
  u32 value = 0;
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || err != std::errc() ||
      ptr != text.data() + text.size()) {
    throw parse_error("invalid value '" + text +
                      "' for --pad (expected an unsigned integer)");
  }
  return value;
}

int run(int argc, char** argv) {
  analyze::LintOptions opts;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--no-cross-check") {
      opts.analysis.cross_check = false;
    } else if (arg == "--pad") {
      if (i + 1 >= argc) {
        throw parse_error("--pad requires a value");
      }
      opts.analysis.pad = parse_pad(argv[++i]);
    } else if (arg == "--layout") {
      if (i + 1 >= argc) {
        throw parse_error("--layout requires a value");
      }
      opts.analysis.layout = gpusim::parse_layout_kind(argv[++i]);
    } else if (arg.rfind("--", 0) == 0) {
      throw parse_error("unknown flag '" + arg +
                        "' (valid: --json, --pad, --layout, --no-cross-check, "
                        "--help)");
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    throw parse_error("no trace files given");
  }
  return analyze::run_lint(files, opts, std::cout, std::cerr);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const wcm::parse_error& e) {
    std::cerr << "usage error: " << e.what() << "\n"
              << "(run 'wcm-lint --help' for the full synopsis)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 5;
  } catch (...) {
    std::cerr << "internal error: unknown exception\n";
    return 5;
  }
}
