// Adversarial input bank: generate worst-case permutations for a set of
// (E, b) configurations and write them to disk (binary WCMI + CSV), ready
// to be fed to a real GPU harness (e.g. a thrust::sort benchmark).
//
//   ./adversarial_bank [out_dir] [k]
//
// defaults: out_dir = ./bank, n = bE * 2^4 per configuration.  The bank
// covers the paper's three parameter sets plus every co-prime E < 32 at
// b = 64 (one file per E), demonstrating the "for every value of E"
// claim of the abstract.

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/generator.hpp"
#include "core/numbers.hpp"
#include "workload/inputs.hpp"
#include "workload/io.hpp"

int main(int argc, char** argv) {
  using namespace wcm;

  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "bank";
  const u32 k = argc > 2 ? static_cast<u32>(std::atoi(argv[2])) : 4;
  std::filesystem::create_directories(out_dir);

  std::vector<sort::SortConfig> configs = {
      sort::params_15_512(), sort::params_17_256(), sort::params_15_128()};
  for (u32 e = 3; e < 32; e += 2) {
    if (core::classify_e(32, e) == core::ERegime::small ||
        core::classify_e(32, e) == core::ERegime::large) {
      configs.push_back(sort::SortConfig{e, 64, 32});
    }
  }

  for (const auto& cfg : configs) {
    const std::size_t n = cfg.tile() << k;
    const auto input = core::worst_case_input(n, cfg);
    const std::string stem =
        "worst_E" + std::to_string(cfg.E) + "_b" + std::to_string(cfg.b) +
        "_n" + std::to_string(n);
    workload::write_binary(out_dir / (stem + ".wcmi"), input);
    workload::write_csv(out_dir / (stem + ".csv"), input);
    std::cout << "wrote " << (out_dir / stem).string() << ".{wcmi,csv}  ("
              << n << " keys, " << core::attacked_round_count(n, cfg)
              << " attacked rounds, predicted beta_2 = "
              << static_cast<double>(core::aligned_worst_case(cfg.w, cfg.E)) / cfg.E
              << ")\n";
  }

  std::cout << "\nbank of " << configs.size()
            << " adversarial inputs written to " << out_dir.string() << "\n";
  return 0;
}
