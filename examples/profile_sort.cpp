// Per-round profiler: the simulator's equivalent of running the sort under
// nv-nsight-cu-cli — a per-kernel breakdown of conflicts, beta values, and
// modeled time for any input kind.
//
//   ./profile_sort [kind] [E] [b] [k]
//
// kind in {random, sorted, reversed, nearly-sorted, worst-case};
// defaults: worst-case, E=15, b=512, n = bE * 2^5.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "sort/pairwise_sort.hpp"
#include "util/table.hpp"
#include "workload/inputs.hpp"

namespace {

wcm::workload::InputKind parse_kind(const char* s) {
  using wcm::workload::InputKind;
  for (const auto kind :
       {InputKind::random, InputKind::sorted, InputKind::reversed,
        InputKind::nearly_sorted, InputKind::worst_case}) {
    if (std::strcmp(s, wcm::workload::to_string(kind)) == 0) {
      return kind;
    }
  }
  std::cerr << "unknown input kind '" << s << "', using worst-case\n";
  return InputKind::worst_case;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wcm;

  auto kind = workload::InputKind::worst_case;
  sort::SortConfig cfg = sort::params_15_512();
  u32 k = 5;
  if (argc > 1) {
    kind = parse_kind(argv[1]);
  }
  if (argc > 2) {
    cfg.E = static_cast<u32>(std::atoi(argv[2]));
  }
  if (argc > 3) {
    cfg.b = static_cast<u32>(std::atoi(argv[3]));
  }
  if (argc > 4) {
    k = static_cast<u32>(std::atoi(argv[4]));
  }
  cfg.validate();
  const std::size_t n = cfg.tile() << k;
  const auto dev = gpusim::quadro_m4000();

  const auto input = workload::make_input(kind, n, cfg, 1);
  const auto report = sort::pairwise_merge_sort(input, cfg, dev);

  std::cout << "profile: " << workload::to_string(kind) << " input, "
            << dev.name << ", " << cfg.to_string() << ", n = " << n
            << "\n\n";

  Table t({"kernel", "time_ms", "beta1", "beta2", "replays", "conflicts/elem",
           "global_txn", "search_steps"});
  for (const auto& r : report.rounds) {
    t.new_row()
        .add(r.name)
        .add(r.modeled_seconds * 1e3, 4)
        .add(gpusim::beta1(r.kernel), 2)
        .add(gpusim::beta2(r.kernel), 2)
        .add(r.kernel.shared.replays)
        .add(gpusim::conflicts_per_element(r.kernel), 3)
        .add(r.kernel.global_transactions)
        .add(r.kernel.binary_search_steps);
  }
  t.print(std::cout);

  std::cout << "\ntotals: " << report.summary() << "\n";
  std::cout << "time split: bandwidth " << report.total_time.t_bandwidth * 1e3
            << "ms, shared " << report.total_time.t_shared * 1e3
            << "ms, compute " << report.total_time.t_compute * 1e3
            << "ms, latency " << report.total_time.t_latency * 1e3
            << "ms, overhead " << report.total_time.t_overhead * 1e3
            << "ms\n";
  return 0;
}
