// Quickstart: construct a worst-case input for the Thrust merge sort
// parameters, sort it (and a random baseline) on the simulated GPU, and
// print what the attack did.
//
//   ./quickstart [E] [b] [k]
//
// defaults: E=15, b=512 (Thrust on the Quadro M4000), n = bE * 2^5.

#include <cstdlib>
#include <iostream>

#include "analysis/series.hpp"
#include "core/conflict_model.hpp"
#include "core/generator.hpp"
#include "sort/pairwise_sort.hpp"
#include "workload/inputs.hpp"

int main(int argc, char** argv) {
  using namespace wcm;

  sort::SortConfig cfg = sort::params_15_512();
  u32 k = 5;
  if (argc > 1) {
    cfg.E = static_cast<u32>(std::atoi(argv[1]));
  }
  if (argc > 2) {
    cfg.b = static_cast<u32>(std::atoi(argv[2]));
  }
  if (argc > 3) {
    k = static_cast<u32>(std::atoi(argv[3]));
  }
  cfg.validate();
  const std::size_t n = cfg.tile() << k;
  const auto dev = gpusim::quadro_m4000();

  std::cout << "GPU pairwise merge sort, " << dev.name << ", "
            << cfg.to_string() << ", n = " << n << "\n\n";

  // 1. The per-warp construction (Theorem 3 or 9).
  const auto warp = core::worst_case_warp(cfg.w, cfg.E);
  const auto eval =
      core::evaluate_warp(warp, core::alignment_window_start(cfg.w, cfg.E));
  std::cout << "Per-warp construction: " << eval.aligned
            << " aligned elements (closed form "
            << core::aligned_worst_case(cfg.w, cfg.E) << "), beta_2 = "
            << core::predicted_beta2(cfg.w, cfg.E)
            << ", effective parallelism " << cfg.w << " -> "
            << core::effective_parallelism(cfg.w, cfg.E)
            << " threads per warp\n\n";

  // 2. Generate the full adversarial permutation and a random baseline.
  const auto worst =
      workload::make_input(workload::InputKind::worst_case, n, cfg, 1);
  const auto random =
      workload::make_input(workload::InputKind::random, n, cfg, 1);

  // 3. Sort both on the simulator.
  const auto r_worst = sort::pairwise_merge_sort(worst, cfg, dev);
  const auto r_random = sort::pairwise_merge_sort(random, cfg, dev);

  std::cout << "random input:     " << r_random.summary() << "\n";
  std::cout << "worst-case input: " << r_worst.summary() << "\n\n";
  std::cout << "slowdown: "
            << analysis::slowdown_percent(r_random.seconds(),
                                          r_worst.seconds())
            << "% (" << core::attacked_round_count(n, cfg)
            << " attacked merge rounds)\n";
  return 0;
}
