// wcm-campaign — campaign smoke benchmark: runs one small built-in grid
// three ways and records the evidence the runtime's determinism and caching
// claims rest on (docs/RUNTIME.md):
//
//   1. serial, cache disabled        -> reference output + serial wall clock
//   2. parallel, cold cache          -> must be byte-identical to (1)
//   3. parallel, warm cache          -> must be byte-identical and 100% hits
//
//   wcm-campaign [spec.json] [--threads n] [--out BENCH_campaign.json]
//
// With no spec argument a built-in smoke grid is used (pairwise thrust +
// mgpu, random vs worst-case, k = 1..4 at E=5, b=64).  Exits non-zero if
// any of the three runs disagree, so the binary doubles as a CI gate; the
// measured wall clocks land in BENCH_campaign.json.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "runtime/campaign.hpp"
#include "util/error.hpp"

namespace {

using namespace wcm;

constexpr const char* kSmokeSpec = R"({
  "name": "smoke",
  "device": "m4000",
  "seed": 7,
  "grid": [
    {"engine": "pairwise", "library": "thrust", "E": 5, "b": 64,
     "input": ["random", "worst-case"], "k": [1, 2, 3, 4]},
    {"engine": "pairwise", "library": "mgpu", "E": 3, "b": 64,
     "input": ["random", "worst-case"], "k": [1, 2, 3, 4]}
  ]
})";

int run(int argc, char** argv) {
  std::string spec_path;
  std::string out_path = "BENCH_campaign.json";
  u32 threads = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<u32>(std::stoul(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg.rfind("--", 0) != 0 && spec_path.empty()) {
      spec_path = arg;
    } else {
      std::cerr << "usage: wcm-campaign [spec.json] [--threads n] "
                   "[--out BENCH_campaign.json]\n";
      return 2;
    }
  }

  runtime::CampaignSpec spec =
      spec_path.empty() ? runtime::parse_campaign_spec(kSmokeSpec)
                        : runtime::load_campaign_spec(spec_path);

  const std::filesystem::path cache_path =
      std::filesystem::path(out_path).concat(".wcmc");
  std::filesystem::remove(cache_path);  // all runs start from a cold cache

  runtime::CampaignOptions serial;
  serial.threads = 1;
  serial.use_cache = false;
  std::cerr << "serial run (1 thread, no cache)...\n";
  const auto ref = runtime::run_campaign(spec, serial);

  runtime::CampaignOptions parallel;
  parallel.threads = threads;
  parallel.use_cache = true;
  parallel.cache_path = cache_path;
  std::cerr << "parallel run (cold cache)...\n";
  const auto cold = runtime::run_campaign(spec, parallel);
  std::cerr << "parallel run (warm cache)...\n";
  const auto warm = runtime::run_campaign(spec, parallel);
  std::filesystem::remove(cache_path);

  const bool identical = ref.json == cold.json && ref.json == warm.json;
  const bool all_hits =
      warm.cache_hits == warm.cells && warm.computed == 0 &&
      cold.computed == cold.cells;
  const double speedup =
      cold.wall_seconds > 0.0 ? ref.wall_seconds / cold.wall_seconds : 0.0;

  std::ofstream os(out_path);
  if (!os) {
    throw io_error("cannot open benchmark output", out_path);
  }
  os << "{\"campaign\":\"" << spec.name << "\""
     << ",\"cells\":" << ref.cells
     << ",\"serial_seconds\":" << ref.wall_seconds
     << ",\"parallel_seconds\":" << cold.wall_seconds
     << ",\"parallel_threads\":" << cold.threads
     << ",\"speedup\":" << speedup
     << ",\"warm_seconds\":" << warm.wall_seconds
     << ",\"warm_cache_hits\":" << warm.cache_hits
     << ",\"outputs_identical\":" << (identical ? "true" : "false")
     << ",\"cache_roundtrip_ok\":" << (all_hits ? "true" : "false") << "}\n";
  if (!os.flush()) {
    throw io_error("benchmark output write failed", out_path);
  }

  std::cout << "cells " << ref.cells << ": serial " << ref.wall_seconds
            << " s, parallel " << cold.wall_seconds << " s on "
            << cold.threads << " threads (speedup " << speedup
            << "x), warm rerun " << warm.wall_seconds << " s with "
            << warm.cache_hits << "/" << warm.cells << " cache hits\n"
            << "outputs identical across runs: " << (identical ? "yes" : "NO")
            << "\nwrote " << out_path << "\n";
  if (!identical || !all_hits) {
    std::cerr << "FAILED: determinism or cache contract violated\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "wcm-campaign: " << e.what() << "\n";
    return 5;
  }
}
