// Real-GPU validation harness (NOT built by this repository's CMake — it
// requires nvcc and a CUDA device; everything else in the repo runs on the
// simulator).  Feed it WCMI files produced by `adversarial_bank` or
// `wcmgen generate --out`, and it times thrust::sort on them, reproducing
// the paper's measurement protocol (10 runs, cudaEvent timing):
//
//   nvcc -O3 -o thrust_harness thrust_harness.cu
//   ./thrust_harness worst_E15_b512_n*.wcmi [more.wcmi ...]
//
// Compare each adversarial file against a random shuffle of the same size
// (the harness generates one per input) and, on a Maxwell or Turing card,
// the slowdown shape of the paper's Figures 4/5 should appear.  Collect
// bank-conflict counts with:
//   nv-nsight-cu-cli --metrics \
//     l1tex__data_bank_conflicts_pipe_lsu_mem_shared_op_ld.sum \
//     ./thrust_harness file.wcmi

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <vector>

#include <thrust/device_vector.h>
#include <thrust/sort.h>

namespace {

constexpr int kRuns = 10;  // the paper reports the average of 10 runs

std::vector<std::int32_t> read_wcmi(const char* path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  is.read(magic, 4);
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is || std::string(magic, 4) != "WCMI" || version != 1) {
    std::fprintf(stderr, "%s is not a WCMI v1 file\n", path);
    std::exit(1);
  }
  std::vector<std::int32_t> keys(n);
  is.read(reinterpret_cast<char*>(keys.data()),
          static_cast<std::streamsize>(n * sizeof(std::int32_t)));
  if (!is) {
    std::fprintf(stderr, "%s is truncated\n", path);
    std::exit(1);
  }
  return keys;
}

float time_sort_ms(const std::vector<std::int32_t>& host_keys) {
  float total = 0.0f;
  for (int run = 0; run < kRuns; ++run) {
    thrust::device_vector<std::int32_t> d(host_keys.begin(),
                                          host_keys.end());
    cudaEvent_t start, stop;
    cudaEventCreate(&start);
    cudaEventCreate(&stop);
    cudaEventRecord(start);
    thrust::sort(d.begin(), d.end());
    cudaEventRecord(stop);
    cudaEventSynchronize(stop);
    float ms = 0.0f;
    cudaEventElapsedTime(&ms, start, stop);
    total += ms;
    cudaEventDestroy(start);
    cudaEventDestroy(stop);
  }
  return total / kRuns;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s input.wcmi [more.wcmi ...]\n", argv[0]);
    return 2;
  }
  std::printf("%-40s %12s %12s %12s %9s\n", "file", "n", "worst_ms",
              "random_ms", "slowdown");
  for (int i = 1; i < argc; ++i) {
    const auto worst = read_wcmi(argv[i]);

    std::vector<std::int32_t> random = worst;
    std::mt19937_64 rng(12345);
    std::shuffle(random.begin(), random.end(), rng);

    const float worst_ms = time_sort_ms(worst);
    const float random_ms = time_sort_ms(random);
    std::printf("%-40s %12zu %12.3f %12.3f %8.2f%%\n", argv[i], worst.size(),
                worst_ms, random_ms,
                (worst_ms - random_ms) / random_ms * 100.0f);
  }
  return 0;
}
